#include "shg/sim/traffic.hpp"

#include <utility>

namespace shg::sim {

namespace {

int log2_exact_or_throw(int n) {
  SHG_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
              "pattern requires a power-of-two tile count");
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

class Uniform final : public TrafficPattern {
 public:
  explicit Uniform(int n) : n_(n) {
    SHG_REQUIRE(n >= 2, "uniform traffic needs at least two tiles");
  }
  int dest(int src, Prng& rng) const override {
    const int d = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_ - 1)));
    return d >= src ? d + 1 : d;  // uniform over tiles != src
  }
  std::string name() const override { return "uniform"; }

 private:
  int n_;
};

class Transpose final : public TrafficPattern {
 public:
  Transpose(int rows, int cols) : rows_(rows), cols_(cols) {
    SHG_REQUIRE(rows == cols, "transpose requires a square grid");
  }
  int dest(int src, Prng&) const override {
    const int r = src / cols_;
    const int c = src % cols_;
    return c * cols_ + r;
  }
  std::string name() const override { return "transpose"; }

 private:
  int rows_;
  int cols_;
};

class BitComplement final : public TrafficPattern {
 public:
  explicit BitComplement(int n) : n_(n) {}
  int dest(int src, Prng&) const override { return n_ - 1 - src; }
  std::string name() const override { return "bit-complement"; }

 private:
  int n_;
};

class BitReverse final : public TrafficPattern {
 public:
  explicit BitReverse(int n) : bits_(log2_exact_or_throw(n)) {}
  int dest(int src, Prng&) const override {
    int out = 0;
    for (int b = 0; b < bits_; ++b) {
      if ((src >> b) & 1) out |= 1 << (bits_ - 1 - b);
    }
    return out;
  }
  std::string name() const override { return "bit-reverse"; }

 private:
  int bits_;
};

class Shuffle final : public TrafficPattern {
 public:
  explicit Shuffle(int n) : n_(n), bits_(log2_exact_or_throw(n)) {}
  int dest(int src, Prng&) const override {
    return ((src << 1) | (src >> (bits_ - 1))) & (n_ - 1);
  }
  std::string name() const override { return "shuffle"; }

 private:
  int n_;
  int bits_;
};

class Tornado final : public TrafficPattern {
 public:
  Tornado(int rows, int cols) : rows_(rows), cols_(cols) {}
  int dest(int src, Prng&) const override {
    const int r = src / cols_;
    const int c = src % cols_;
    const int dr = (r + (rows_ + 1) / 2 - 1) % rows_;
    const int dc = (c + (cols_ + 1) / 2 - 1) % cols_;
    return dr * cols_ + dc;
  }
  std::string name() const override { return "tornado"; }

 private:
  int rows_;
  int cols_;
};

class NearestNeighbor final : public TrafficPattern {
 public:
  NearestNeighbor(int rows, int cols) : rows_(rows), cols_(cols) {}
  int dest(int src, Prng&) const override {
    const int r = src / cols_;
    const int c = src % cols_;
    return r * cols_ + (c + 1) % cols_;
  }
  std::string name() const override { return "neighbor"; }

 private:
  int rows_;
  int cols_;
};

class Hotspot final : public TrafficPattern {
 public:
  Hotspot(int n, std::vector<int> hotspots, double fraction)
      : uniform_(n), hotspots_(std::move(hotspots)), fraction_(fraction) {
    SHG_REQUIRE(!hotspots_.empty(), "need at least one hotspot");
    SHG_REQUIRE(fraction > 0.0 && fraction <= 1.0,
                "hotspot fraction must be in (0, 1]");
    for (int h : hotspots_) {
      SHG_REQUIRE(h >= 0 && h < n, "hotspot tile out of range");
    }
  }
  int dest(int src, Prng& rng) const override {
    if (rng.chance(fraction_)) {
      return hotspots_[rng.below(hotspots_.size())];
    }
    return uniform_.dest(src, rng);
  }
  std::string name() const override { return "hotspot"; }

 private:
  Uniform uniform_;
  std::vector<int> hotspots_;
  double fraction_;
};

class RandPerm final : public TrafficPattern {
 public:
  RandPerm(int n, std::uint64_t seed) : perm_(static_cast<std::size_t>(n)) {
    SHG_REQUIRE(n >= 2, "random permutation needs at least two tiles");
    // Fisher–Yates with the pattern's own PRNG stream: the permutation is
    // a pure function of (n, seed), independent of the simulation seed.
    for (int i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = i;
    Prng rng(seed);
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(i) + 1));
      std::swap(perm_[static_cast<std::size_t>(i)],
                perm_[static_cast<std::size_t>(j)]);
    }
  }
  int dest(int src, Prng&) const override {
    return perm_[static_cast<std::size_t>(src)];
  }
  std::string name() const override { return "randperm"; }

 private:
  std::vector<int> perm_;
};

}  // namespace

std::unique_ptr<TrafficPattern> make_uniform(int num_tiles) {
  return std::make_unique<Uniform>(num_tiles);
}
std::unique_ptr<TrafficPattern> make_transpose(int rows, int cols) {
  return std::make_unique<Transpose>(rows, cols);
}
std::unique_ptr<TrafficPattern> make_bit_complement(int num_tiles) {
  return std::make_unique<BitComplement>(num_tiles);
}
std::unique_ptr<TrafficPattern> make_bit_reverse(int num_tiles) {
  return std::make_unique<BitReverse>(num_tiles);
}
std::unique_ptr<TrafficPattern> make_shuffle(int num_tiles) {
  return std::make_unique<Shuffle>(num_tiles);
}
std::unique_ptr<TrafficPattern> make_tornado(int rows, int cols) {
  return std::make_unique<Tornado>(rows, cols);
}
std::unique_ptr<TrafficPattern> make_neighbor(int rows, int cols) {
  return std::make_unique<NearestNeighbor>(rows, cols);
}
std::unique_ptr<TrafficPattern> make_hotspot(int num_tiles,
                                             std::vector<int> hotspots,
                                             double fraction) {
  return std::make_unique<Hotspot>(num_tiles, std::move(hotspots), fraction);
}
std::unique_ptr<TrafficPattern> make_randperm(int num_tiles,
                                              std::uint64_t seed) {
  return std::make_unique<RandPerm>(num_tiles, seed);
}

}  // namespace shg::sim
