// Synthetic traffic patterns (BookSim-style).
//
// The paper's Figure 6 uses random uniform traffic; the permutation
// patterns are provided for the extended evaluation and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shg/common/prng.hpp"
#include "shg/topo/topology.hpp"

namespace shg::sim {

/// Maps a source tile to a destination tile. A pattern may return
/// dest == src (e.g. fixed points of permutations); callers skip those
/// packets.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual int dest(int src, Prng& rng) const = 0;
  virtual std::string name() const = 0;
};

/// Uniform random: every other tile equally likely.
std::unique_ptr<TrafficPattern> make_uniform(int num_tiles);

/// Matrix transpose: (r, c) -> (c, r); requires a square grid.
std::unique_ptr<TrafficPattern> make_transpose(int rows, int cols);

/// Bit complement on the tile index: i -> N-1-i.
std::unique_ptr<TrafficPattern> make_bit_complement(int num_tiles);

/// Bit reversal on the tile index; requires a power-of-two tile count.
std::unique_ptr<TrafficPattern> make_bit_reverse(int num_tiles);

/// Perfect shuffle (rotate index bits left); requires a power-of-two count.
std::unique_ptr<TrafficPattern> make_shuffle(int num_tiles);

/// Tornado: half-way offset in both grid dimensions.
std::unique_ptr<TrafficPattern> make_tornado(int rows, int cols);

/// Nearest neighbor: (r, c) -> (r, (c+1) mod C).
std::unique_ptr<TrafficPattern> make_neighbor(int rows, int cols);

/// Hotspot: with probability `fraction`, send to a random hotspot tile;
/// otherwise uniform.
std::unique_ptr<TrafficPattern> make_hotspot(int num_tiles,
                                             std::vector<int> hotspots,
                                             double fraction);

/// Random permutation: a fixed permutation drawn once from `seed`
/// (Fisher–Yates over the tile ids), then dest = perm[src] for the whole
/// run. The adversarial workload for adaptive routing: unlike `uniform`
/// every source loads exactly one path, and unlike the bit permutations
/// the pairing has no structure a minimal route distribution can exploit.
std::unique_ptr<TrafficPattern> make_randperm(int num_tiles,
                                              std::uint64_t seed);

}  // namespace shg::sim
