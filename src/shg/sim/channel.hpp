// Pipelined router-to-router channel with credit backflow.
//
// Section II-A: links too long for the target frequency receive pipeline
// registers, so traversing a link takes `latency` >= 1 cycles. Credits
// travel the opposite direction on the paired wires with the same latency,
// making the credit round-trip 2 * latency + processing — the simulator
// reproduces the resulting throughput ceiling for shallow buffers.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "shg/common/error.hpp"
#include "shg/sim/flit.hpp"

namespace shg::sim {

class Channel {
 public:
  explicit Channel(int latency) : latency_(latency) {
    SHG_REQUIRE(latency >= 1, "every link has at least one cycle of latency");
  }

  int latency() const { return latency_; }

  /// Sends a flit downstream at cycle `now`; it becomes visible at
  /// now + latency.
  void push_flit(const Flit& flit, Cycle now) {
    flits_.emplace_back(now + latency_, flit);
  }

  /// Pops the next flit if it has arrived by cycle `now`.
  std::optional<Flit> pop_flit(Cycle now) {
    if (flits_.empty() || flits_.front().first > now) return std::nullopt;
    Flit flit = flits_.front().second;
    flits_.pop_front();
    return flit;
  }

  /// Sends a credit upstream at cycle `now`.
  void push_credit(const Credit& credit, Cycle now) {
    credits_.emplace_back(now + latency_, credit);
  }

  /// Pops the next credit if it has arrived by cycle `now`.
  std::optional<Credit> pop_credit(Cycle now) {
    if (credits_.empty() || credits_.front().first > now) return std::nullopt;
    Credit credit = credits_.front().second;
    credits_.pop_front();
    return credit;
  }

  bool idle() const { return flits_.empty() && credits_.empty(); }

  /// Flits currently traversing the pipeline (credits excluded).
  std::size_t pending_flits() const { return flits_.size(); }

 private:
  int latency_;
  std::deque<std::pair<Cycle, Flit>> flits_;
  std::deque<std::pair<Cycle, Credit>> credits_;
};

}  // namespace shg::sim
