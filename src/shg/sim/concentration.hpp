// Terminal addressing for concentrated fabrics (booksim2 cmesh-style).
//
// With concentration c > 1 every router serves c terminals, arranged in
// the most-square sub-grid (sub_rows x sub_cols with sub_rows * sub_cols
// == c and sub_rows <= sub_cols): an R x C router grid presents an
// (R * sub_rows) x (C * sub_cols) *terminal grid*, and traffic patterns
// address row-major terminal ids on that grid. The sub-grid layout keeps
// spatial patterns meaningful: a square router grid with a perfect-square
// concentration has a square terminal grid, so transpose/tornado traffic
// stays defined, and neighboring terminals map to the same or adjacent
// routers. c == 1 degenerates to terminal == tile, port 0.
#pragma once

#include "shg/common/error.hpp"

namespace shg::sim {

struct Concentration {
  int rows = 1;      ///< router grid rows
  int cols = 1;      ///< router grid cols
  int factor = 1;    ///< terminals per router (c)
  int sub_rows = 1;  ///< terminal sub-grid rows per router
  int sub_cols = 1;  ///< terminal sub-grid cols per router

  static Concentration make(int rows, int cols, int factor) {
    SHG_REQUIRE(rows >= 1 && cols >= 1, "concentration needs a real grid");
    SHG_REQUIRE(factor >= 1, "need at least one terminal per router");
    Concentration c;
    c.rows = rows;
    c.cols = cols;
    c.factor = factor;
    // Most-square factorization: the largest divisor <= sqrt(factor).
    for (int d = 1; d * d <= factor; ++d) {
      if (factor % d == 0) c.sub_rows = d;
    }
    c.sub_cols = factor / c.sub_rows;
    return c;
  }

  int terminals() const { return rows * cols * factor; }
  int terminal_rows() const { return rows * sub_rows; }
  int terminal_cols() const { return cols * sub_cols; }

  /// Row-major terminal id of endpoint `port` (0..factor) at `tile`.
  int terminal(int tile, int port) const {
    const int tr = (tile / cols) * sub_rows + port / sub_cols;
    const int tc = (tile % cols) * sub_cols + port % sub_cols;
    return tr * terminal_cols() + tc;
  }

  int tile_of(int terminal) const {
    const int tr = terminal / terminal_cols();
    const int tc = terminal % terminal_cols();
    return (tr / sub_rows) * cols + tc / sub_cols;
  }

  int port_of(int terminal) const {
    const int tr = terminal / terminal_cols();
    const int tc = terminal % terminal_cols();
    return (tr % sub_rows) * sub_cols + tc % sub_cols;
  }
};

}  // namespace shg::sim
