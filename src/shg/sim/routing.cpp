#include "shg/sim/routing.hpp"

#include <algorithm>
#include <cmath>

#include "shg/common/prng.hpp"
#include "shg/graph/shortest_paths.hpp"
#include "shg/graph/spanning_tree.hpp"
#include "shg/sim/config.hpp"

namespace shg::sim {

namespace {

/// (u, v) -> output port of u toward v; -1 when not adjacent. Port i of
/// router u corresponds to graph().neighbors(u)[i] (network convention).
std::vector<std::vector<int>> build_port_lookup(const topo::Topology& topo) {
  const auto& g = topo.graph();
  std::vector<std::vector<int>> lookup(
      static_cast<std::size_t>(g.num_nodes()),
      std::vector<int>(static_cast<std::size_t>(g.num_nodes()), -1));
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      lookup[static_cast<std::size_t>(u)]
            [static_cast<std::size_t>(nbrs[i].node)] = static_cast<int>(i);
    }
  }
  return lookup;
}

/// A 1D "line": the sub-topology within one row (positions = columns) or
/// one column (positions = rows), or the whole ring. Lines are either paths
/// (routed monotonically toward the target, possibly with skip steps) or
/// cycles (routed in the shorter direction with a dateline VC upgrade).
struct Line {
  bool is_cycle = false;
  int length = 0;
  std::vector<std::vector<int>> nbrs;  ///< position -> neighbor positions
  // Cycle-only fields:
  std::vector<int> ring_index;  ///< position -> index along the cycle walk
  std::vector<int> succ;        ///< position -> clockwise neighbor position
  std::vector<int> pred;        ///< position -> counter-clockwise neighbor

  /// Builds the line from its internal adjacency.
  static Line from_adjacency(std::vector<std::vector<int>> nbrs) {
    Line line;
    line.nbrs = std::move(nbrs);
    line.length = static_cast<int>(line.nbrs.size());
    const bool all_degree_two =
        line.length >= 3 &&
        std::all_of(line.nbrs.begin(), line.nbrs.end(),
                    [](const auto& n) { return n.size() == 2; });
    if (!all_degree_two) return line;

    // Walk the cycle starting at position 0 to establish a ring order.
    line.ring_index.assign(static_cast<std::size_t>(line.length), -1);
    line.succ.assign(static_cast<std::size_t>(line.length), -1);
    line.pred.assign(static_cast<std::size_t>(line.length), -1);
    int prev = -1;
    int cur = 0;
    for (int step = 0; step < line.length; ++step) {
      line.ring_index[static_cast<std::size_t>(cur)] = step;
      const auto& n = line.nbrs[static_cast<std::size_t>(cur)];
      const int next = (n[0] == prev) ? n[1] : n[0];
      line.succ[static_cast<std::size_t>(cur)] = next;
      line.pred[static_cast<std::size_t>(next)] = cur;
      prev = cur;
      cur = next;
    }
    // A true single cycle returns to the start after `length` steps.
    if (cur == 0 && std::all_of(line.ring_index.begin(), line.ring_index.end(),
                                [](int r) { return r >= 0; })) {
      line.is_cycle = true;
    }
    return line;
  }

  /// Next-position candidates from `from` toward `to`, most preferred
  /// first. For cycles the single shortest-direction step is returned and
  /// `crosses_dateline` reports whether it traverses the wrap edge.
  void candidates(int from, int to, std::vector<int>* out,
                  bool* crosses_dateline) const {
    out->clear();
    *crosses_dateline = false;
    if (is_cycle) {
      const int L = length;
      const int rf = ring_index[static_cast<std::size_t>(from)];
      const int rt = ring_index[static_cast<std::size_t>(to)];
      const int cw = (rt - rf + L) % L;
      const int ccw = L - cw;
      if (cw <= ccw) {
        out->push_back(succ[static_cast<std::size_t>(from)]);
        *crosses_dateline = rf == L - 1;  // edge (L-1 -> 0)
      } else {
        out->push_back(pred[static_cast<std::size_t>(from)]);
        *crosses_dateline = rf == 0;  // edge (0 -> L-1)
      }
      return;
    }
    // Path line: all monotone steps that do not overshoot, largest first.
    for (int n : nbrs[static_cast<std::size_t>(from)]) {
      const bool improves = std::abs(n - to) < std::abs(from - to);
      const bool monotone = (from < to) ? (n > from && n <= to)
                                        : (n < from && n >= to);
      if (improves && monotone) out->push_back(n);
    }
    std::sort(out->begin(), out->end(), [to](int a, int b) {
      return std::abs(a - to) < std::abs(b - to);
    });
    SHG_ASSERT(!out->empty(),
               "path line must contain unit steps toward the target");
  }
};

/// Shared VC-class plumbing: class 0 = has not crossed a dateline in the
/// current dimension, class 1 = has. When no line is a cycle the entire VC
/// range forms a single class.
struct VcClasses {
  int num_vcs = 1;
  bool split = false;

  RouteCandidate candidate(int port, int cls) const {
    if (!split) return RouteCandidate{port, 0, num_vcs};
    const int half = num_vcs / 2;
    return cls == 0 ? RouteCandidate{port, 0, half}
                    : RouteCandidate{port, half, num_vcs};
  }

  int class_of_vc(int vc) const {
    if (!split || vc < 0) return 0;
    return vc < num_vcs / 2 ? 0 : 1;
  }
};

// ---------------------------------------------------------------------------
// XY-Hamming routing (mesh / FB / SHG / Ruche / torus / folded torus)
// ---------------------------------------------------------------------------

// When every line is a path (mesh / FB / SHG / Ruche), the two dimension
// orders XY and YX are both deadlock-free; splitting the VCs into an
// XY-class and a YX-class (O1TURN) doubles the path diversity at no risk:
// each class's channel dependency graph is acyclic on its own and packets
// never switch class after injection. Grids containing cycles (torus,
// folded torus) instead use the classes for dateline crossing and route
// strictly row-first.
class XYHammingRouting final : public RoutingFunction {
 public:
  XYHammingRouting(const topo::Topology& topo, int num_vcs)
      : topo_(&topo), ports_(build_port_lookup(topo)) {
    const int rows = topo.rows();
    const int cols = topo.cols();
    // Row lines: positions are columns.
    for (int r = 0; r < rows; ++r) {
      std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(cols));
      for (int c = 0; c < cols; ++c) {
        for (const auto& n : topo.graph().neighbors(topo.node(r, c))) {
          const auto other = topo.coord(n.node);
          SHG_REQUIRE(other.row == r || other.col == c,
                      "XY routing requires axis-aligned links");
          if (other.row == r) {
            nbrs[static_cast<std::size_t>(c)].push_back(other.col);
          }
        }
      }
      row_lines_.push_back(Line::from_adjacency(std::move(nbrs)));
    }
    // Column lines: positions are rows.
    for (int c = 0; c < cols; ++c) {
      std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(rows));
      for (int r = 0; r < rows; ++r) {
        for (const auto& n : topo.graph().neighbors(topo.node(r, c))) {
          const auto other = topo.coord(n.node);
          if (other.col == c && other.row != r) {
            nbrs[static_cast<std::size_t>(r)].push_back(other.row);
          }
        }
      }
      col_lines_.push_back(Line::from_adjacency(std::move(nbrs)));
    }
    const bool any_cycle =
        std::any_of(row_lines_.begin(), row_lines_.end(),
                    [](const Line& l) { return l.is_cycle; }) ||
        std::any_of(col_lines_.begin(), col_lines_.end(),
                    [](const Line& l) { return l.is_cycle; });
    SHG_REQUIRE(!any_cycle || num_vcs >= 2,
                "dateline routing requires at least 2 VCs");
    o1turn_ = !any_cycle && num_vcs >= 2;
    classes_ = VcClasses{num_vcs, any_cycle || o1turn_};
  }

  std::vector<RouteCandidate> route(int node, int in_port, int in_vc,
                                    int dest) const override {
    if (o1turn_) {
      if (in_port < 0) {
        // Injection: offer both dimension orders; whichever class the VC
        // allocator grants determines the packet's order for its lifetime.
        auto result = order_candidates(node, dest, /*row_first=*/true, 0);
        auto yx = order_candidates(node, dest, /*row_first=*/false, 1);
        result.insert(result.end(), yx.begin(), yx.end());
        return result;
      }
      const int cls = classes_.class_of_vc(in_vc);
      return order_candidates(node, dest, /*row_first=*/cls == 0, cls);
    }

    // Dateline mode (torus / folded torus): strict row-first order; the VC
    // class tracks dateline crossings within the current dimension and
    // resets when the packet turns into the column phase (the dimensions
    // have disjoint channel sets, so each starts at class 0).
    const auto at = topo_->coord(node);
    const auto to = topo_->coord(dest);
    int cls = classes_.class_of_vc(in_vc);
    const bool column_phase = at.col == to.col;
    if (in_port >= 0) {
      const auto from =
          topo_->coord(topo_->graph().neighbors(node)[static_cast<std::size_t>(
              in_port)].node);
      const bool arrived_via_row = from.row == at.row;
      if (column_phase && arrived_via_row) cls = 0;  // fresh dimension
    } else {
      cls = 0;
    }

    std::vector<int> steps;
    bool crosses = false;
    std::vector<RouteCandidate> result;
    if (column_phase) {
      const Line& line = col_lines_[static_cast<std::size_t>(at.col)];
      line.candidates(at.row, to.row, &steps, &crosses);
      for (int r : steps) {
        result.push_back(classes_.candidate(
            port(node, topo_->node(r, at.col)), crosses ? 1 : cls));
      }
    } else {
      const Line& line = row_lines_[static_cast<std::size_t>(at.row)];
      line.candidates(at.col, to.col, &steps, &crosses);
      for (int c : steps) {
        result.push_back(classes_.candidate(
            port(node, topo_->node(at.row, c)), crosses ? 1 : cls));
      }
    }
    return result;
  }

  std::string name() const override {
    return o1turn_ ? "xy-hamming-o1turn" : "xy-hamming";
  }

 private:
  int port(int u, int v) const {
    const int p = ports_[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
    SHG_ASSERT(p >= 0, "route stepped to a non-neighbor");
    return p;
  }

  /// Monotone candidates for one dimension order (row-first or
  /// column-first) with VCs restricted to `cls`.
  std::vector<RouteCandidate> order_candidates(int node, int dest,
                                               bool row_first,
                                               int cls) const {
    const auto at = topo_->coord(node);
    const auto to = topo_->coord(dest);
    std::vector<int> steps;
    bool crosses = false;
    std::vector<RouteCandidate> result;
    const bool move_in_row =
        row_first ? at.col != to.col : at.row == to.row;
    if (move_in_row) {
      const Line& line = row_lines_[static_cast<std::size_t>(at.row)];
      line.candidates(at.col, to.col, &steps, &crosses);
      for (int c : steps) {
        result.push_back(
            classes_.candidate(port(node, topo_->node(at.row, c)), cls));
      }
    } else {
      const Line& line = col_lines_[static_cast<std::size_t>(at.col)];
      line.candidates(at.row, to.row, &steps, &crosses);
      for (int r : steps) {
        result.push_back(
            classes_.candidate(port(node, topo_->node(r, at.col)), cls));
      }
    }
    return result;
  }

  const topo::Topology* topo_;
  std::vector<std::vector<int>> ports_;
  std::vector<Line> row_lines_;
  std::vector<Line> col_lines_;
  VcClasses classes_;
  bool o1turn_ = false;
};

// ---------------------------------------------------------------------------
// Ring routing (single cycle through all tiles)
// ---------------------------------------------------------------------------

class RingRouting final : public RoutingFunction {
 public:
  RingRouting(const topo::Topology& topo, int num_vcs)
      : topo_(&topo), ports_(build_port_lookup(topo)) {
    const auto& g = topo.graph();
    std::vector<std::vector<int>> nbrs(
        static_cast<std::size_t>(g.num_nodes()));
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (const auto& n : g.neighbors(u)) {
        nbrs[static_cast<std::size_t>(u)].push_back(n.node);
      }
    }
    line_ = Line::from_adjacency(std::move(nbrs));
    SHG_REQUIRE(line_.is_cycle, "ring routing requires a single cycle");
    SHG_REQUIRE(num_vcs >= 2, "dateline routing requires at least 2 VCs");
    classes_ = VcClasses{num_vcs, true};
  }

  std::vector<RouteCandidate> route(int node, int /*in_port*/, int in_vc,
                                    int dest) const override {
    std::vector<int> steps;
    bool crosses = false;
    line_.candidates(node, dest, &steps, &crosses);
    const int cls = crosses ? 1 : classes_.class_of_vc(in_vc);
    std::vector<RouteCandidate> result;
    for (int next : steps) {
      const int p =
          ports_[static_cast<std::size_t>(node)][static_cast<std::size_t>(next)];
      SHG_ASSERT(p >= 0, "ring step to non-neighbor");
      result.push_back(classes_.candidate(p, cls));
    }
    return result;
  }

  std::string name() const override { return "ring-dateline"; }

 private:
  const topo::Topology* topo_;
  std::vector<std::vector<int>> ports_;
  Line line_;
  VcClasses classes_;
};

// ---------------------------------------------------------------------------
// E-cube routing (hypercube, Gray-code grid embedding)
// ---------------------------------------------------------------------------

class EcubeRouting final : public RoutingFunction {
 public:
  EcubeRouting(const topo::Topology& topo, int num_vcs)
      : topo_(&topo), num_vcs_(num_vcs), ports_(build_port_lookup(topo)) {
    const int n = topo.num_tiles();
    SHG_REQUIRE((n & (n - 1)) == 0, "hypercube needs a power-of-two size");
    int col_bits = 0;
    while ((1 << col_bits) < topo.cols()) ++col_bits;
    label_of_.resize(static_cast<std::size_t>(n));
    node_of_.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < topo.rows(); ++r) {
      for (int c = 0; c < topo.cols(); ++c) {
        const unsigned label =
            (gray(static_cast<unsigned>(r)) << col_bits) |
            gray(static_cast<unsigned>(c));
        label_of_[static_cast<std::size_t>(topo.node(r, c))] =
            static_cast<int>(label);
        node_of_[label] = topo.node(r, c);
      }
    }
  }

  std::vector<RouteCandidate> route(int node, int /*in_port*/, int /*in_vc*/,
                                    int dest) const override {
    const int diff = label_of_[static_cast<std::size_t>(node)] ^
                     label_of_[static_cast<std::size_t>(dest)];
    SHG_ASSERT(diff != 0, "route called with node == dest");
    const int bit = diff & -diff;  // lowest differing dimension
    const int next_label = label_of_[static_cast<std::size_t>(node)] ^ bit;
    const int next = node_of_[static_cast<std::size_t>(next_label)];
    const int p =
        ports_[static_cast<std::size_t>(node)][static_cast<std::size_t>(next)];
    SHG_ASSERT(p >= 0, "e-cube step to non-neighbor");
    return {RouteCandidate{p, 0, num_vcs_}};
  }

  std::string name() const override { return "e-cube"; }

 private:
  static unsigned gray(unsigned i) { return i ^ (i >> 1); }

  const topo::Topology* topo_;
  int num_vcs_;
  std::vector<std::vector<int>> ports_;
  std::vector<int> label_of_;
  std::vector<int> node_of_;
};

// ---------------------------------------------------------------------------
// Adaptive minimal + up*/down* escape (arbitrary topologies, e.g. SlimNoC)
// ---------------------------------------------------------------------------

class TableEscapeRouting final : public RoutingFunction {
 public:
  TableEscapeRouting(const topo::Topology& topo, int num_vcs)
      : topo_(&topo), num_vcs_(num_vcs), ports_(build_port_lookup(topo)) {
    SHG_REQUIRE(num_vcs >= 2,
                "escape-VC routing requires at least 2 VCs (VC0 = escape)");
    hops_ = graph::all_pairs_hops(topo.graph());
    tree_ = graph::bfs_spanning_tree(topo.graph(), 0);
    tables_ = graph::up_down_tables(topo.graph(), tree_);
  }

  std::vector<RouteCandidate> route(int node, int in_port, int in_vc,
                                    int dest) const override {
    std::vector<RouteCandidate> result;
    // Freshly injected packets sit in an arbitrary local-port VC; only
    // packets that traveled a network channel on VC 0 are on the escape
    // class.
    const bool on_escape = in_vc == 0 && in_port >= 0;
    if (!on_escape) {
      // Fully adaptive minimal hops on the adaptive VC class [1, V).
      const int d = hops_[static_cast<std::size_t>(node)]
                         [static_cast<std::size_t>(dest)];
      const auto& nbrs = topo_->graph().neighbors(node);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (hops_[static_cast<std::size_t>(nbrs[i].node)]
                 [static_cast<std::size_t>(dest)] == d - 1) {
          result.push_back(
              RouteCandidate{static_cast<int>(i), 1, num_vcs_});
        }
      }
    }
    // Escape hop: a fresh up*/down* path when joining from an adaptive VC
    // (phase 0), or the continuation of the current escape path (phase
    // derived from the direction of the arrival move).
    int escape_next;
    if (on_escape && in_port >= 0) {
      const int from =
          topo_->graph().neighbors(node)[static_cast<std::size_t>(in_port)]
              .node;
      const bool went_down = !tree_.is_up(from, node);
      escape_next = went_down
                        ? tables_.phase1[static_cast<std::size_t>(node)]
                                        [static_cast<std::size_t>(dest)]
                        : tables_.phase0[static_cast<std::size_t>(node)]
                                        [static_cast<std::size_t>(dest)];
    } else {
      escape_next = tables_.phase0[static_cast<std::size_t>(node)]
                                  [static_cast<std::size_t>(dest)];
    }
    SHG_ASSERT(escape_next >= 0, "escape path must always exist");
    const int p = ports_[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(escape_next)];
    SHG_ASSERT(p >= 0, "escape step to non-neighbor");
    result.push_back(RouteCandidate{p, 0, 1});
    return result;
  }

  std::string name() const override { return "minimal-adaptive+escape"; }

 private:
  const topo::Topology* topo_;
  int num_vcs_;
  std::vector<std::vector<int>> ports_;
  std::vector<std::vector<int>> hops_;
  graph::SpanningTree tree_;
  graph::UpDownTables tables_;
};

// ---------------------------------------------------------------------------
// UGAL-class adaptive routing (any family)
// ---------------------------------------------------------------------------

// Adaptive minimal candidates on VCs [kUgalEscapeVcs, V); the family's own
// deadlock-free routing, built for kUgalEscapeVcs VCs, serves as the Duato
// escape network on the reserved classes [0, kUgalEscapeVcs). A packet on an
// adaptive VC is always offered the escape candidates too (appended after
// the adaptive ones, matching TableEscapeRouting's preference order); a
// packet that arrived on an escape VC gets the escape routing's candidates
// verbatim — all inside the escape band — so once on escape it stays there.
// The router consults ugal_info() at injection time for the Valiant
// intermediate and the hop weights of the UGAL occupancy comparison; the
// routing function itself is oblivious to whether a packet is on its
// minimal or non-minimal leg (the router swaps the *destination* it asks
// about).
class UgalRouting final : public RoutingFunction {
 public:
  UgalRouting(const topo::Topology& topo, int num_vcs, std::uint64_t via_seed)
      : topo_(&topo),
        num_vcs_(num_vcs),
        escape_(make_default_routing(topo, kUgalEscapeVcs)) {
    SHG_REQUIRE(num_vcs >= kUgalEscapeVcs + 1,
                "UGAL routing requires at least " +
                    std::to_string(kUgalEscapeVcs + 1) +
                    " VCs (2 escape classes + 1 adaptive)");
    const auto& g = topo.graph();
    const int n = g.num_nodes();
    hops_ = graph::all_pairs_hops(g);
    info_.num_nodes = n;
    const auto flat = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    info_.via.assign(flat, -1);
    info_.hops.assign(flat, 0);
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        info_.hops[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(d)] =
            static_cast<std::int32_t>(
                hops_[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]);
      }
    }
    // One deterministic Valiant intermediate per ordered (src, dest) pair,
    // drawn s-major then d so the table is identical however the engines
    // enumerate pairs. The draw is uniform over the n-2 nodes that are
    // neither endpoint (remap around the sorted pair).
    if (n >= 3) {
      shg::Prng rng(via_seed);
      for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
          if (s == d) continue;
          int x = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 2)));
          const int a = std::min(s, d);
          const int b = std::max(s, d);
          if (x >= a) ++x;
          if (x >= b) ++x;
          info_.via[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(d)] =
              static_cast<std::int32_t>(x);
        }
      }
    }
  }

  std::vector<RouteCandidate> route(int node, int in_port, int in_vc,
                                    int dest) const override {
    // Only packets that traveled a network channel on an escape VC are on
    // the escape band; injected packets (in_port == -1) and adaptive-VC
    // arrivals are in the adaptive state.
    const bool on_escape =
        in_port >= 0 && in_vc >= 0 && in_vc < kUgalEscapeVcs;
    if (on_escape) {
      // Stay on escape: the family routing's candidates all live in
      // [0, kUgalEscapeVcs) because it was built for that many VCs.
      return escape_->route(node, in_port, in_vc, dest);
    }
    // Fully adaptive minimal hops on the adaptive VC band.
    std::vector<RouteCandidate> result;
    const int d = hops_[static_cast<std::size_t>(node)]
                       [static_cast<std::size_t>(dest)];
    const auto& nbrs = topo_->graph().neighbors(node);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (hops_[static_cast<std::size_t>(nbrs[i].node)]
               [static_cast<std::size_t>(dest)] == d - 1) {
        result.push_back(
            RouteCandidate{static_cast<int>(i), kUgalEscapeVcs, num_vcs_});
      }
    }
    // Escape entry: ask the family routing as if the packet were freshly
    // injected at this node (in_vc == -1 resolves to its class 0), so any
    // adaptive packet can always fall onto the escape network mid-path.
    auto escape = escape_->route(node, in_port, -1, dest);
    result.insert(result.end(), escape.begin(), escape.end());
    return result;
  }

  std::string name() const override { return "ugal+" + escape_->name(); }

  const UgalInfo* ugal_info() const override { return &info_; }

 private:
  const topo::Topology* topo_;
  int num_vcs_;
  std::unique_ptr<RoutingFunction> escape_;
  std::vector<std::vector<int>> hops_;
  UgalInfo info_;
};

}  // namespace

std::unique_ptr<RoutingFunction> make_xy_hamming_routing(
    const topo::Topology& topo, int num_vcs) {
  return std::make_unique<XYHammingRouting>(topo, num_vcs);
}

std::unique_ptr<RoutingFunction> make_ring_routing(const topo::Topology& topo,
                                                   int num_vcs) {
  return std::make_unique<RingRouting>(topo, num_vcs);
}

std::unique_ptr<RoutingFunction> make_ecube_routing(const topo::Topology& topo,
                                                    int num_vcs) {
  return std::make_unique<EcubeRouting>(topo, num_vcs);
}

std::unique_ptr<RoutingFunction> make_table_escape_routing(
    const topo::Topology& topo, int num_vcs) {
  return std::make_unique<TableEscapeRouting>(topo, num_vcs);
}

std::unique_ptr<RoutingFunction> make_default_routing(
    const topo::Topology& topo, int num_vcs) {
  switch (topo.kind()) {
    case topo::Kind::kRing:
      return make_ring_routing(topo, num_vcs);
    case topo::Kind::kMesh:
    case topo::Kind::kFlattenedButterfly:
    case topo::Kind::kSparseHamming:
    case topo::Kind::kRuche:
    case topo::Kind::kTorus:
    case topo::Kind::kFoldedTorus:
      return make_xy_hamming_routing(topo, num_vcs);
    case topo::Kind::kHypercube:
      return make_ecube_routing(topo, num_vcs);
    case topo::Kind::kSlimNoc:
    case topo::Kind::kCustom:
      return make_table_escape_routing(topo, num_vcs);
  }
  return make_table_escape_routing(topo, num_vcs);
}

std::unique_ptr<RoutingFunction> make_ugal_routing(const topo::Topology& topo,
                                                   int num_vcs,
                                                   std::uint64_t via_seed) {
  return std::make_unique<UgalRouting>(topo, num_vcs, via_seed);
}

std::unique_ptr<RoutingFunction> make_policy_routing(const topo::Topology& topo,
                                                     const SimConfig& config) {
  if (effective_routing_policy(config) == RoutingPolicy::kUgal) {
    return make_ugal_routing(topo, config.num_vcs, config.ugal_via_seed);
  }
  return make_default_routing(topo, config.num_vcs);
}

}  // namespace shg::sim
