// Structure-of-arrays simulation engine: the simulator's raw-speed path.
//
// Produces results bit-identical to the reference AoS path (Simulator's
// Network/Router/Channel objects) — same PRNG draw order, same allocator
// decisions, same floating-point accumulation order, same cycle count —
// while replacing its three scaling bottlenecks:
//
//  * Flat slabs instead of per-object deques. Input-VC buffers, channel
//    pipelines and credit queues live in fixed-capacity ring buffers inside
//    network-owned arenas indexed by (router, port, vc) / channel id; a
//    flit is a 16-byte {cycle, packet, flags} entry and per-packet metadata
//    (src, dest, eject port, hop count) lives in packet-indexed arrays
//    filled once at generation. No push_back/pop_front churn, no pointer
//    chasing, no per-flit copies of cold fields.
//
//  * An active-router worklist instead of full-network sweeps. Every router
//    carries a work counter (buffered flits + NI-queued flits + flits
//    approaching on its input channels + credits approaching on its output
//    channels); only routers with work are processed. Router phases commute
//    across routers (channels are timestamped, so nothing pushed in cycle t
//    is visible before t+1), except that ejection statistics must
//    accumulate in the reference tile order — ejections therefore collect
//    into a per-cycle buffer that is stable-sorted by tile before the
//    statistics pass.
//
//  * Whole-network quiescence fast-forward. The injection schedule is a
//    pure function of the seed (no draw depends on network state, source
//    queues are unbounded), so it is pre-generated draw-for-draw. When
//    nothing is in flight — no flit anywhere AND no credit on a channel —
//    every cycle until the next scheduled injection is a provable no-op and
//    `now` jumps there directly, preserving the exact cycle count the
//    reference loop reports.
//
// See ARCHITECTURE.md ("Simulator hot loop") for the invariants that make
// the three equivalences exact.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "shg/sim/config.hpp"
#include "shg/sim/injection.hpp"
#include "shg/sim/route_table.hpp"
#include "shg/sim/routing.hpp"
#include "shg/sim/simulator.hpp"
#include "shg/sim/traffic.hpp"
#include "shg/topo/topology.hpp"

namespace shg::sim {

/// One-shot engine: construct, run(), discard. The Simulator front end
/// owns topology/routing/table/process and constructs one engine per run.
class SoaEngine {
 public:
  /// `routing` may be null only when `table` is non-null (table mode);
  /// `process` must be non-null and is reset() by run().
  SoaEngine(const topo::Topology& topo, const std::vector<int>& link_latencies,
            const SimConfig& config, const TrafficPattern& pattern,
            int endpoints_per_tile, const RoutingFunction* routing,
            const RouteTable* table, InjectionProcess* process);

  /// Runs warmup + measurement + drain and returns the statistics,
  /// bit-identical to the AoS reference path.
  SimResult run();

  /// Packets sent on a UGAL non-minimal leg (0 under an effective kMinimal
  /// policy); matches the reference engine's per-router counter sum.
  long long ugal_nonminimal() const { return ugal_nonminimal_; }

 private:
  // Flags on buffered/in-flight flit entries.
  static constexpr std::uint8_t kHead = 1;
  static constexpr std::uint8_t kTail = 2;
  // Input-VC allocation states (the reference InputVc::State values).
  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kVcAlloc = 1;
  static constexpr std::uint8_t kActive = 2;

  /// A flit waiting in an input-VC buffer slab.
  struct BufFlit {
    Cycle ready = 0;  ///< earliest switchable cycle (router pipeline delay)
    std::int32_t pkt = 0;
    std::uint8_t flags = 0;
  };
  /// A flit traversing a channel pipeline.
  struct ChanFlit {
    Cycle arrival = 0;
    std::int32_t pkt = 0;
    std::int16_t vc = 0;
    std::uint8_t flags = 0;
  };
  /// A credit traversing a channel (upstream direction).
  struct ChanCredit {
    Cycle arrival = 0;
    std::int32_t vc = 0;
  };
  /// One ejected flit, buffered per cycle and sorted by tile so statistics
  /// accumulate in the reference harvest order.
  struct EjectRec {
    std::int32_t tile = 0;
    std::int32_t pkt = 0;
    std::uint8_t flags = 0;
  };
  /// Growable ring of packet ids (an NI source queue; unbounded like the
  /// reference deque, but one entry per packet instead of per flit).
  struct PktRing {
    std::vector<std::int32_t> buf;
    std::size_t head = 0;
    std::size_t count = 0;

    void push(std::int32_t id);
    std::int32_t front() const { return buf[head]; }
    void pop() {
      head = head + 1 == buf.size() ? 0 : head + 1;
      --count;
    }
  };

  // (router, port, vc) -> flat slot id; buffers slab-index at slot * depth.
  std::size_t slot(int r, int port, int vc) const {
    return (port_base_[static_cast<std::size_t>(r)] +
            static_cast<std::size_t>(port)) *
               static_cast<std::size_t>(vcs_) +
           static_cast<std::size_t>(vc);
  }

  void build_fabric(const topo::Topology& topo,
                    const std::vector<int>& link_latencies);
  /// Replays the reference generation loop draw-for-draw into the
  /// per-packet arrays (the injection schedule).
  void pregenerate(const topo::Topology& topo);

  void activate(int r) {
    if (!queued_[static_cast<std::size_t>(r)]) {
      queued_[static_cast<std::size_t>(r)] = 1;
      active_.push_back(r);
    }
  }

  void deliver(int r, Cycle now);
  void ni_inject(int r, Cycle now);
  void allocate(int r, Cycle now);
  void compute_route(int r, int port, int vc, std::size_t s);

  /// UGAL-mode route computation (mirrors Router::compute_route_ugal):
  /// injection-time minimal/non-minimal decision, via-leg candidate splice,
  /// escape-band passthrough.
  void compute_route_ugal(int r, std::size_t s, int in_port, int in_vc,
                          std::int32_t pkt, int dest);
  /// Output port of the first injection-row candidate toward `to`.
  int first_port(int r, int to) const;
  /// Downstream adaptive-band occupancy of router r's output `port`.
  int adaptive_occupancy(int r, int port) const;
  /// Appends the adaptive (or escape) band of the (in_port, in_vc) row
  /// toward `to` onto `out`.
  void append_band(int r, int in_port, int in_vc, int to, bool adaptive,
                   std::vector<RouteCandidate>& out) const;

  void push_buf(std::size_t s, Cycle ready, std::int32_t pkt,
                std::uint8_t flags);
  void push_chan_flit(int c, Cycle now, std::int32_t pkt, int vc,
                      std::uint8_t flags);
  void push_chan_credit(int c, Cycle now, int vc);

  // --- Configuration (copied out of SimConfig for tight loop access) -----
  SimConfig config_;
  const TrafficPattern* pattern_;
  const RoutingFunction* routing_;
  const RouteTable* table_;
  InjectionProcess* process_;
  int num_routers_ = 0;
  int local_ports_ = 0;  ///< endpoint ports per tile
  int vcs_ = 0;
  int depth_ = 0;        ///< input buffer depth, flits
  int pkt_flits_ = 0;    ///< flits per packet
  int delay_ = 0;        ///< router pipeline delay, cycles
  int max_ports_ = 0;
  bool ugal_mode_ = false;
  const UgalInfo* ugal_info_ = nullptr;
  long long ugal_nonminimal_ = 0;

  // --- Fabric layout ------------------------------------------------------
  std::vector<int> net_ports_;          ///< per router
  std::vector<std::size_t> port_base_;  ///< per router: first flat port id
  std::vector<int> in_chan_;            ///< per flat net port: channel in
  std::vector<int> out_chan_;           ///< per flat net port: channel out
  std::vector<int> chan_src_;           ///< per channel: producing router
  std::vector<int> chan_dst_;           ///< per channel: consuming router
  std::vector<int> chan_lat_;           ///< per channel: latency, cycles
  std::vector<int> chan_cap_;           ///< per channel: ring capacity
  std::vector<std::size_t> chan_base_;  ///< per channel: slab offset

  // --- Hot state slabs ----------------------------------------------------
  std::vector<BufFlit> buf_;              ///< input VC buffers, slot * depth
  std::vector<std::uint16_t> buf_head_;   ///< per slot: ring head
  std::vector<std::uint16_t> buf_count_;  ///< per slot: occupancy
  std::vector<ChanFlit> chan_flits_;
  std::vector<std::uint16_t> chan_fhead_;
  std::vector<std::uint16_t> chan_fcount_;
  std::vector<ChanCredit> chan_credits_;
  std::vector<std::uint16_t> chan_chead_;
  std::vector<std::uint16_t> chan_ccount_;

  // Input-VC allocation state (per slot).
  std::vector<std::uint8_t> ivc_state_;
  std::vector<std::int32_t> ivc_out_port_;
  std::vector<std::int32_t> ivc_out_vc_;
  std::vector<const RouteCandidate*> ivc_routes_;
  std::vector<std::int32_t> ivc_routes_len_;
  std::vector<RouteCandidate> ivc_eject_;  ///< per slot: ejection candidate
  std::vector<std::vector<RouteCandidate>> ivc_live_;  ///< live-routing mode

  // Output-VC state (per slot) and rotating allocator priorities.
  std::vector<std::uint8_t> ovc_busy_;
  std::vector<std::int32_t> ovc_credits_;
  std::vector<std::int32_t> va_rr_;      ///< per slot
  std::vector<std::int32_t> sa_in_rr_;   ///< per flat port
  std::vector<std::int32_t> sa_out_rr_;  ///< per flat port

  // Allocator phase occupancy, so allocate() skips phases with no eligible
  // slot instead of re-scanning every (port, vc) each cycle. Pure
  // skip-empty-work: round-robin pointers only move on grants, and a phase
  // with zero eligible slots grants nothing, so skipping it is
  // bit-identical to scanning it.
  std::vector<std::int32_t> route_pending_;  ///< per router: idle slots w/ flits
  std::vector<std::int32_t> va_pending_;     ///< per router: slots in kVcAlloc
  std::vector<std::int32_t> active_ivcs_;    ///< per router: slots in kActive
  std::vector<std::uint8_t> port_active_;    ///< per flat port: kActive slots

  // Network interfaces (per tile * local port).
  std::vector<PktRing> ni_queue_;
  std::vector<std::int32_t> ni_front_flit_;
  std::vector<std::int32_t> ni_open_vc_;
  std::vector<std::int32_t> ni_next_vc_;

  // Worklist.
  std::vector<long long> work_;      ///< per router: flits + credits pending
  std::vector<long long> buffered_;  ///< per router: flits in input VCs
  std::vector<std::uint8_t> queued_;
  std::vector<int> active_;
  long long total_flits_ = 0;    ///< NI queues + buffers + channels
  long long total_credits_ = 0;  ///< credits on channels

  // Per-packet metadata (filled by pregenerate; index = packet id).
  std::vector<Cycle> pk_create_;
  std::vector<std::int32_t> pk_src_;
  std::vector<std::int32_t> pk_dest_;
  std::vector<std::int32_t> pk_port_;        ///< source endpoint port
  std::vector<std::int32_t> pk_eject_port_;  ///< -1 = spread by packet id
  std::vector<std::int32_t> pk_hops_;
  /// UGAL Valiant intermediate per packet; -1 = minimal / already reached.
  /// Equivalent to the reference Flit::via field: the head flit exists in
  /// exactly one buffer at a time, so one per-packet slot is the same state.
  std::vector<std::int32_t> pk_via_;
  std::vector<std::uint8_t> pk_measured_;
  std::vector<std::uint8_t> pk_done_;
  long long measured_created_ = 0;
  std::size_t sched_ptr_ = 0;

  // Per-cycle scratch.
  std::vector<EjectRec> eject_buf_;
  std::vector<std::pair<int, int>> va_requests_;
  std::vector<int> sa_request_port_;
  std::vector<int> sa_request_vc_;
  std::vector<int> sa_req_in_;   ///< input ports that nominated this cycle
  std::vector<int> sa_req_ops_;  ///< distinct requested out ports, ascending
};

}  // namespace shg::sim
