// Flow control units (flits) and credits — the atomic quantities moved by
// the cycle-accurate simulator.
#pragma once

#include <cstdint>

namespace shg::sim {

using Cycle = long long;

/// One flow control unit. Packets are sequences of flits delimited by
/// head/tail flags; wormhole switching keeps a packet on one VC per hop.
struct Flit {
  int packet_id = 0;
  int src = 0;   ///< source tile
  int dest = 0;  ///< destination tile
  bool head = false;
  bool tail = false;
  int vc = 0;  ///< VC on the channel currently carrying the flit
  int hops = 0;  ///< routers traversed so far (filled in by the network)
  /// Local (endpoint) port at the destination router, for concentrated
  /// fabrics where the destination terminal fixes the port. -1 = classic
  /// behavior: spread over the tile's endpoints by packet id.
  int eject_port = -1;
  /// UGAL non-minimal leg: the Valiant intermediate the packet routes
  /// minimally toward before turning to `dest`. -1 = minimal (or the
  /// intermediate has been reached and cleared). Set once by the source
  /// router's injection-time UGAL decision; only meaningful on head flits.
  int via = -1;
  Cycle create_cycle = 0;  ///< when the packet was generated at the source
  /// Earliest cycle the current router may switch this flit (models the
  /// router pipeline: every router adds >= 1 cycle, Section II-A).
  Cycle ready_cycle = 0;
};

/// Credit returned upstream when an input buffer slot frees up.
struct Credit {
  int vc = 0;
};

}  // namespace shg::sim
