#include "shg/sim/traffic_spec.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "shg/sim/concentration.hpp"
#include "shg/sim/trace.hpp"

namespace shg::sim {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (true) {
    const auto pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_double(const std::string& token, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  SHG_REQUIRE(!token.empty() && end == token.c_str() + token.size(),
              std::string("traffic spec: malformed ") + what + " '" + token +
                  "'");
  return value;
}

int parse_int(const std::string& token, const char* what) {
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  SHG_REQUIRE(!token.empty() && end == token.c_str() + token.size(),
              std::string("traffic spec: malformed ") + what + " '" + token +
                  "'");
  return static_cast<int>(value);
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  SHG_REQUIRE(!token.empty() && token[0] != '-' &&
                  end == token.c_str() + token.size(),
              std::string("traffic spec: malformed ") + what + " '" + token +
                  "'");
  return static_cast<std::uint64_t>(value);
}

/// %g-style formatting without trailing zeros, for canonical().
std::string fmt_number(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

void parse_pattern_part(const std::string& part, TrafficSpec& spec) {
  const std::vector<std::string> tokens = split(part, ':');
  const std::string& name = tokens.front();
  // A bare "trace" reaching this point lacked the "trace:<path>" shape
  // (the prefix is intercepted before the '/' split, since paths may
  // contain slashes).
  SHG_REQUIRE(name != "trace",
              "traffic spec: trace needs 'trace:<path>[@scale]'");
  const auto& known = known_pattern_names();
  SHG_REQUIRE(std::find(known.begin(), known.end(), name) != known.end(),
              "traffic spec: unknown pattern '" + name + "'");
  if (name == "hotspot") {
    SHG_REQUIRE(tokens.size() == 3,
                "traffic spec: hotspot needs 'hotspot:<tiles>:<fraction>'");
    for (const std::string& tile : split(tokens[1], ',')) {
      spec.hotspot_tiles.push_back(parse_int(tile, "hotspot tile"));
    }
    spec.hotspot_fraction = parse_double(tokens[2], "hotspot fraction");
    SHG_REQUIRE(spec.hotspot_fraction > 0.0 && spec.hotspot_fraction <= 1.0,
                "traffic spec: hotspot fraction must be in (0, 1]");
  } else if (name == "randperm") {
    SHG_REQUIRE(tokens.size() == 2,
                "traffic spec: randperm needs 'randperm:<seed>'");
    spec.randperm_seed = parse_u64(tokens[1], "randperm seed");
  } else {
    SHG_REQUIRE(tokens.size() == 1,
                "traffic spec: pattern '" + name + "' takes no arguments");
  }
  spec.pattern = name;
}

void parse_process_part(const std::string& part, TrafficSpec& spec) {
  const std::vector<std::string> tokens = split(part, ':');
  const std::string& name = tokens.front();
  if (name == "bernoulli") {
    SHG_REQUIRE(tokens.size() == 1,
                "traffic spec: bernoulli takes no arguments");
  } else if (name == "onoff") {
    SHG_REQUIRE(tokens.size() == 2,
                "traffic spec: on-off needs 'onoff:<alpha>,<beta>'");
    const std::vector<std::string> args = split(tokens[1], ',');
    SHG_REQUIRE(args.size() == 2,
                "traffic spec: on-off needs 'onoff:<alpha>,<beta>'");
    spec.on_off_alpha = parse_double(args[0], "on-off alpha");
    spec.on_off_beta = parse_double(args[1], "on-off beta");
    SHG_REQUIRE(spec.on_off_alpha > 0.0 && spec.on_off_alpha <= 1.0,
                "traffic spec: on-off alpha must be in (0, 1]");
    SHG_REQUIRE(spec.on_off_beta >= 0.0 && spec.on_off_beta < 1.0,
                "traffic spec: on-off beta must be in [0, 1)");
  } else {
    SHG_REQUIRE(false,
                "traffic spec: unknown injection process '" + name + "'");
  }
  spec.process = name;
}

}  // namespace

const std::vector<std::string>& known_pattern_names() {
  static const std::vector<std::string> names = {
      "uniform", "transpose", "bit-complement", "bit-reverse", "shuffle",
      "tornado", "neighbor",  "hotspot",        "randperm"};
  return names;
}

TrafficSpec TrafficSpec::parse(const std::string& text) {
  SHG_REQUIRE(!text.empty(), "traffic spec: empty spec");
  // Trace specs are intercepted before the '/' half-split: the path may
  // contain slashes, and a trace replaces both halves anyway.
  if (text.rfind("trace:", 0) == 0) {
    TrafficSpec spec;
    spec.pattern = "trace";
    spec.process = "trace";
    std::string rest = text.substr(6);
    const auto at = rest.rfind('@');
    if (at != std::string::npos) {
      spec.trace_scale = parse_double(rest.substr(at + 1), "trace scale");
      SHG_REQUIRE(spec.trace_scale > 0.0,
                  "traffic spec: trace scale must be positive");
      rest.resize(at);
    }
    SHG_REQUIRE(!rest.empty(),
                "traffic spec: trace needs 'trace:<path>[@scale]'");
    spec.trace_path = rest;
    return spec;
  }
  const std::vector<std::string> halves = split(text, '/');
  SHG_REQUIRE(halves.size() <= 2,
              "traffic spec: expected '<pattern>[/<process>]', got '" + text +
                  "'");
  TrafficSpec spec;
  parse_pattern_part(halves[0], spec);
  if (halves.size() == 2) parse_process_part(halves[1], spec);
  return spec;
}

std::string TrafficSpec::canonical() const {
  if (is_trace()) {
    std::string text = "trace:" + trace_path;
    if (trace_scale != 1.0) text += "@" + fmt_number(trace_scale);
    return text;
  }
  std::ostringstream os;
  os << pattern;
  if (pattern == "hotspot") {
    os << ':';
    for (std::size_t i = 0; i < hotspot_tiles.size(); ++i) {
      if (i > 0) os << ',';
      os << hotspot_tiles[i];
    }
    os << ':' << fmt_number(hotspot_fraction);
  }
  if (pattern == "randperm") {
    os << ':' << randperm_seed;
  }
  if (process != "bernoulli") {
    os << '/' << process << ':' << fmt_number(on_off_alpha) << ','
       << fmt_number(on_off_beta);
  }
  return os.str();
}

std::unique_ptr<TrafficPattern> TrafficSpec::make_pattern(
    int rows, int cols, int concentration) const {
  SHG_REQUIRE(!is_trace(),
              "traffic spec '" + canonical() +
                  "' is a trace; instantiate it with make_trace_workload, "
                  "not make_pattern");
  SHG_REQUIRE(rows >= 1 && cols >= 1, "traffic spec: empty grid");
  // Patterns are instantiated over the terminal grid: with concentration 1
  // it IS the router grid, otherwise each router contributes a sub-grid of
  // terminals (sim/concentration.hpp) and spatial patterns keep their
  // meaning on the finer grid.
  const Concentration conc = Concentration::make(rows, cols, concentration);
  const int trows = conc.terminal_rows();
  const int tcols = conc.terminal_cols();
  const int n = conc.terminals();
  // Pattern/shape mismatches (square-only transpose, power-of-two-only
  // shuffle, out-of-range hotspot ids, ...) surface from the pattern
  // constructors as bare preconditions; rethrow them here with the one
  // thing the caller can act on — which spec failed on which grid.
  try {
    if (pattern == "uniform") return make_uniform(n);
    if (pattern == "transpose") return make_transpose(trows, tcols);
    if (pattern == "bit-complement") return make_bit_complement(n);
    if (pattern == "bit-reverse") return make_bit_reverse(n);
    if (pattern == "shuffle") return make_shuffle(n);
    if (pattern == "tornado") return make_tornado(trows, tcols);
    if (pattern == "neighbor") return make_neighbor(trows, tcols);
    if (pattern == "hotspot") {
      return make_hotspot(n, hotspot_tiles, hotspot_fraction);
    }
    if (pattern == "randperm") return make_randperm(n, randperm_seed);
  } catch (const Error& e) {
    throw Error("traffic spec '" + canonical() +
                "' is not applicable to the " + std::to_string(trows) + "x" +
                std::to_string(tcols) + " terminal grid: " + e.what());
  }
  SHG_REQUIRE(false, "traffic spec: unknown pattern '" + pattern + "'");
  return nullptr;  // unreachable
}

std::unique_ptr<InjectionProcess> TrafficSpec::make_process(
    double packet_prob, int num_sources) const {
  SHG_REQUIRE(!is_trace(),
              "traffic spec '" + canonical() +
                  "' is a trace; its timing comes from the trace bytes, "
                  "not an injection process");
  if (process == "bernoulli") return make_bernoulli(packet_prob);
  if (process == "onoff") {
    return make_on_off(packet_prob, on_off_alpha, on_off_beta, num_sources);
  }
  SHG_REQUIRE(false, "traffic spec: unknown injection process '" + process +
                         "'");
  return nullptr;  // unreachable
}

void TrafficSpec::resolve_trace() {
  if (!is_trace() || trace != nullptr) return;
  trace = std::make_shared<const Trace>(load_trace(trace_path));
}

std::uint64_t TrafficSpec::trace_content_hash() const {
  return trace != nullptr ? trace->content_hash() : 0;
}

TraceWorkload TrafficSpec::make_trace_workload(int rows, int cols,
                                               int concentration,
                                               int endpoints_per_tile,
                                               int packet_size_flits) const {
  SHG_REQUIRE(is_trace(), "traffic spec '" + canonical() +
                              "' is not a trace; use make_pattern");
  SHG_REQUIRE(trace != nullptr,
              "traffic spec '" + canonical() +
                  "' has no loaded trace; call resolve_trace() first");
  SHG_REQUIRE(rows >= 1 && cols >= 1, "traffic spec: empty grid");
  const Concentration conc = Concentration::make(rows, cols, concentration);
  const bool concentrated = concentration > 1;
  const int ports = concentrated ? concentration : endpoints_per_tile;
  const int num_sources = rows * cols * ports;
  const int num_terminals = concentrated ? conc.terminals() : rows * cols;
  try {
    return make_trace_replay(trace, num_sources, num_terminals,
                             packet_size_flits, trace_scale);
  } catch (const Error& e) {
    throw Error("traffic spec '" + canonical() +
                "' is not applicable to the " + std::to_string(rows) + "x" +
                std::to_string(cols) + " router grid: " + e.what());
  }
}

}  // namespace shg::sim
