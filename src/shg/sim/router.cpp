#include "shg/sim/router.hpp"

#include <algorithm>
#include <limits>

namespace shg::sim {

namespace {
// Local output ports model the tile's endpoints as an infinite sink: the
// endpoint always accepts one flit per port and cycle.
constexpr int kSinkCredits = std::numeric_limits<int>::max() / 2;
}  // namespace

Router::Router(int node, int num_net_ports, int num_local_ports,
               const SimConfig& config, const RoutingFunction* routing,
               const RouteTable* table)
    : node_(node),
      num_net_ports_(num_net_ports),
      num_local_ports_(num_local_ports),
      config_(config),
      routing_(routing),
      table_(table) {
  SHG_REQUIRE(num_net_ports >= 0 && num_local_ports >= 1,
              "router needs at least one local port");
  SHG_REQUIRE(routing != nullptr || table != nullptr,
              "router needs a routing function or a route table");
  SHG_REQUIRE(table == nullptr || table->num_vcs() == config.num_vcs,
              "route table was built for a different VC count");
  config_.validate();
  ugal_mode_ = effective_routing_policy(config_) == RoutingPolicy::kUgal;
  if (ugal_mode_) {
    ugal_info_ =
        table_ != nullptr ? table_->ugal_info() : routing_->ugal_info();
    SHG_REQUIRE(ugal_info_ != nullptr,
                "UGAL routing policy needs a UGAL routing function or a "
                "route table built from one");
  }
  const int ports = num_ports();
  in_channels_.assign(static_cast<std::size_t>(ports), nullptr);
  out_channels_.assign(static_cast<std::size_t>(ports), nullptr);
  input_vcs_.resize(static_cast<std::size_t>(ports * config_.num_vcs));
  output_vcs_.resize(static_cast<std::size_t>(ports * config_.num_vcs));
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < config_.num_vcs; ++v) {
      out_vc(p, v).credits =
          is_local_port(p) ? kSinkCredits : config_.buffer_depth_flits;
    }
  }
  va_rr_.assign(static_cast<std::size_t>(ports * config_.num_vcs), 0);
  sa_in_rr_.assign(static_cast<std::size_t>(ports), 0);
  sa_out_rr_.assign(static_cast<std::size_t>(ports), 0);
  sa_request_port_.assign(static_cast<std::size_t>(ports), -1);
  sa_request_vc_.assign(static_cast<std::size_t>(ports), -1);
}

void Router::attach(int port, Channel* in_channel, Channel* out_channel) {
  SHG_REQUIRE(port >= 0 && port < num_net_ports_,
              "can only attach channels to network ports");
  in_channels_[static_cast<std::size_t>(port)] = in_channel;
  out_channels_[static_cast<std::size_t>(port)] = out_channel;
}

bool Router::try_inject(int local_port, int vc, const Flit& flit, Cycle now) {
  SHG_REQUIRE(local_port >= 0 && local_port < num_local_ports_,
              "local port out of range");
  SHG_REQUIRE(vc >= 0 && vc < config_.num_vcs, "vc out of range");
  InputVc& ivc = in_vc(num_net_ports_ + local_port, vc);
  if (static_cast<int>(ivc.buffer.size()) >= config_.buffer_depth_flits) {
    return false;
  }
  Flit stored = flit;
  stored.vc = vc;
  stored.ready_cycle = now + config_.router_delay_cycles;
  ivc.buffer.push_back(stored);
  ++buffered_;
  return true;
}

int Router::local_vc_space(int local_port, int vc) const {
  const InputVc& ivc = in_vc(num_net_ports_ + local_port, vc);
  return config_.buffer_depth_flits - static_cast<int>(ivc.buffer.size());
}

void Router::deliver_phase(Cycle now) {
  for (int p = 0; p < num_net_ports_; ++p) {
    Channel* in = in_channels_[static_cast<std::size_t>(p)];
    if (in != nullptr) {
      while (auto flit = in->pop_flit(now)) {
        InputVc& ivc = in_vc(p, flit->vc);
        SHG_ASSERT(static_cast<int>(ivc.buffer.size()) <
                       config_.buffer_depth_flits,
                   "credit protocol violated: buffer overflow");
        flit->ready_cycle = now + config_.router_delay_cycles;
        ivc.buffer.push_back(*flit);
        ++buffered_;
      }
    }
    Channel* out = out_channels_[static_cast<std::size_t>(p)];
    if (out != nullptr) {
      while (auto credit = out->pop_credit(now)) {
        ++out_vc(p, credit->vc).credits;
      }
    }
  }
}

void Router::compute_route(int port, int vc) {
  InputVc& ivc = in_vc(port, vc);
  const Flit& head = ivc.buffer.front();
  SHG_ASSERT(head.head, "route computation requires a head flit");
  if (head.dest == node_) {
    // Ejection: the destination terminal's port when the packet carries one
    // (concentrated fabrics), otherwise pick the endpoint port by packet id
    // (spreads load over the tile's endpoints); any VC of the sink port is
    // acceptable.
    SHG_ASSERT(head.eject_port < num_local_ports_,
               "eject port beyond the tile's endpoints");
    const int local =
        num_net_ports_ + (head.eject_port >= 0
                              ? head.eject_port
                              : head.packet_id % num_local_ports_);
    ivc.eject = RouteCandidate{local, 0, config_.num_vcs};
    ivc.routes = {&ivc.eject, 1};
  } else {
    // Local input ports report in_port == -1 AND in_vc == -1: the local
    // buffer VC an injected packet happens to sit in carries no routing
    // state (VC classes like dateline/escape only apply to network hops).
    // Passing the raw local VC here once caused a real deadlock: packets
    // injected into VC 1 of the local port were misclassified as "already
    // crossed the dateline" and legally traversed the wrap edge on the
    // class-1 channels, closing the cycle the dateline breaks.
    const bool from_network = port < num_net_ports_;
    const int in_port = from_network ? port : -1;
    const int in_vc = from_network ? vc : -1;
    if (ugal_mode_) {
      compute_route_ugal(ivc, in_port, in_vc);
    } else if (table_ != nullptr) {
      ivc.routes = table_->lookup(node_, in_port, in_vc, head.dest);
    } else {
      ivc.live_candidates = routing_->route(node_, in_port, in_vc, head.dest);
      ivc.routes = ivc.live_candidates;
    }
    SHG_ASSERT(!ivc.routes.empty(), "routing returned no candidates");
  }
  ivc.state = InputVc::State::kVcAlloc;
}

std::span<const RouteCandidate> Router::row(
    int in_port, int in_vc, int dest,
    std::vector<RouteCandidate>& storage) const {
  if (table_ != nullptr) return table_->lookup(node_, in_port, in_vc, dest);
  storage = routing_->route(node_, in_port, in_vc, dest);
  return storage;
}

int Router::adaptive_occupancy(int out_port) {
  int occ = 0;
  for (int v = kUgalEscapeVcs; v < config_.num_vcs; ++v) {
    occ += config_.buffer_depth_flits - out_vc(out_port, v).credits;
  }
  return occ;
}

void Router::compute_route_ugal(InputVc& ivc, int in_port, int in_vc) {
  Flit& head = ivc.buffer.front();
  // A packet that traveled a network channel on an escape VC stays on the
  // escape network for the rest of its life: its rows (the family routing's
  // own candidates) all live inside the escape band, and they target the
  // final destination — any non-minimal leg is abandoned on escape entry.
  const bool on_escape =
      in_port >= 0 && in_vc >= 0 && in_vc < kUgalEscapeVcs;
  if (on_escape) {
    ivc.routes = row(in_port, in_vc, head.dest, ivc.live_candidates);
    return;
  }
  if (in_port < 0 && head.via < 0) {
    // Injection-time UGAL decision (booksim2 ugal_dragonflynew shape): the
    // minimal path competes on adaptive-band occupancy of its first hop
    // weighted by its hop count; the Valiant alternative carries the
    // two-leg hop count plus the configured bias. Occupancy reads only
    // this router's output credit counters, which both engines agree on at
    // route-computation time (deliver runs before allocate on every
    // router), so the decision is engine-independent.
    const int via = ugal_info_->via_of(node_, head.dest);
    if (via >= 0) {
      std::vector<RouteCandidate> scratch;
      const auto row_min = row(-1, -1, head.dest, scratch);
      const int occ_min = adaptive_occupancy(row_min.front().out_port);
      const auto row_nm = row(-1, -1, via, scratch);
      const int occ_nm = adaptive_occupancy(row_nm.front().out_port);
      const long long cost_min =
          static_cast<long long>(occ_min) *
          ugal_info_->hops_between(node_, head.dest);
      const long long cost_nm =
          static_cast<long long>(occ_nm) *
              (ugal_info_->hops_between(node_, via) +
               ugal_info_->hops_between(via, head.dest)) +
          config_.ugal_bias_flits;
      if (cost_nm < cost_min) {
        head.via = via;
        ++ugal_nonminimal_;
      }
    }
  }
  // The intermediate is reached on the adaptive band: the non-minimal leg
  // ends and the packet routes minimally toward its destination. The
  // buffered head is cleared in place so the downstream copy carries
  // via == -1.
  if (head.via == node_) head.via = -1;
  if (head.via < 0) {
    ivc.routes = row(in_port, in_vc, head.dest, ivc.live_candidates);
    return;
  }
  // Non-minimal leg: adaptive candidates steer toward the intermediate,
  // the escape candidates keep targeting the final destination (escape
  // entry abandons the leg; see above).
  std::vector<RouteCandidate> spliced;
  std::vector<RouteCandidate> scratch;
  for (const RouteCandidate& cand : row(in_port, in_vc, head.via, scratch)) {
    if (cand.vc_begin >= kUgalEscapeVcs) spliced.push_back(cand);
  }
  for (const RouteCandidate& cand : row(in_port, in_vc, head.dest, scratch)) {
    if (cand.vc_begin < kUgalEscapeVcs) spliced.push_back(cand);
  }
  ivc.live_candidates = std::move(spliced);
  ivc.routes = ivc.live_candidates;
}

void Router::allocate_phase(Cycle now) {
  // Empty router fast path: with no buffered flit there is nothing to
  // route, no VC to request and no switch grant to make, and the
  // round-robin pointers only advance on grants — skipping the three
  // allocator sweeps is bit-identical to running them. At low and moderate
  // loads most routers are empty in most cycles.
  if (buffered_ == 0) return;
  const int ports = num_ports();
  const int vcs = config_.num_vcs;

  // --- Route computation for fresh heads --------------------------------
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < vcs; ++v) {
      InputVc& ivc = in_vc(p, v);
      if (ivc.state == InputVc::State::kIdle && !ivc.buffer.empty()) {
        compute_route(p, v);
      }
    }
  }

  // --- VC allocation ------------------------------------------------------
  // Each waiting input VC requests its most-preferred candidate with a free
  // output VC; requests are grouped per output VC and granted round-robin.
  va_requests_.clear();
  for (int p = 0; p < ports; ++p) {
    for (int v = 0; v < vcs; ++v) {
      InputVc& ivc = in_vc(p, v);
      if (ivc.state != InputVc::State::kVcAlloc) continue;
      int request = -1;
      for (const RouteCandidate& cand : ivc.routes) {
        // UGAL liveness guard: committing to an adaptive-band VC with no
        // credit could park the packet behind a congestion cycle the escape
        // network cannot break (the commit is final until the tail leaves).
        // Requiring a credit up front means an adaptive grant always makes
        // one hop of progress, and a head that cannot get one keeps
        // requesting — and can always fall onto the escape candidate, whose
        // acyclic network drains. Minimal mode keeps the historical
        // busy-only check (bit-identical behavior).
        const bool needs_credit =
            ugal_mode_ && cand.vc_begin >= kUgalEscapeVcs;
        for (int ov = cand.vc_begin; ov < cand.vc_end; ++ov) {
          const OutputVc& o = out_vc(cand.out_port, ov);
          if (!o.busy && (!needs_credit || o.credits > 0)) {
            request = cand.out_port * vcs + ov;
            break;
          }
        }
        if (request >= 0) break;
      }
      if (request >= 0) {
        va_requests_.emplace_back(request, p * vcs + v);
      }
    }
  }
  std::sort(va_requests_.begin(), va_requests_.end());
  for (std::size_t i = 0; i < va_requests_.size();) {
    const int out_key = va_requests_[i].first;
    std::size_t j = i;
    while (j < va_requests_.size() && va_requests_[j].first == out_key) ++j;
    // Round-robin among requesters [i, j).
    const int rr = va_rr_[static_cast<std::size_t>(out_key)];
    std::size_t winner = i;
    int best = std::numeric_limits<int>::max();
    for (std::size_t k = i; k < j; ++k) {
      const int in_key = va_requests_[k].second;
      const int rank = (in_key - rr + ports * vcs) % (ports * vcs);
      if (rank < best) {
        best = rank;
        winner = k;
      }
    }
    const int in_key = va_requests_[winner].second;
    InputVc& ivc = input_vcs_[static_cast<std::size_t>(in_key)];
    ivc.state = InputVc::State::kActive;
    ivc.out_port = out_key / vcs;
    ivc.out_vc = out_key % vcs;
    out_vc(ivc.out_port, ivc.out_vc).busy = true;
    va_rr_[static_cast<std::size_t>(out_key)] = (in_key + 1) % (ports * vcs);
    i = j;
  }

  // --- Switch allocation ---------------------------------------------------
  // Input-first: every input port nominates one ready VC (round-robin),
  // then every output port grants one input port (round-robin).
  std::fill(sa_request_port_.begin(), sa_request_port_.end(), -1);
  for (int p = 0; p < ports; ++p) {
    const int start = sa_in_rr_[static_cast<std::size_t>(p)];
    for (int off = 0; off < vcs; ++off) {
      const int v = (start + off) % vcs;
      InputVc& ivc = in_vc(p, v);
      if (ivc.state == InputVc::State::kActive && !ivc.buffer.empty() &&
          ivc.buffer.front().ready_cycle <= now &&
          out_vc(ivc.out_port, ivc.out_vc).credits > 0) {
        sa_request_port_[static_cast<std::size_t>(p)] = ivc.out_port;
        sa_request_vc_[static_cast<std::size_t>(p)] = v;
        break;
      }
    }
  }
  for (int op = 0; op < ports; ++op) {
    // Gather input ports requesting this output port; grant one.
    int winner = -1;
    int best = std::numeric_limits<int>::max();
    const int rr = sa_out_rr_[static_cast<std::size_t>(op)];
    for (int p = 0; p < ports; ++p) {
      if (sa_request_port_[static_cast<std::size_t>(p)] != op) continue;
      const int rank = (p - rr + ports) % ports;
      if (rank < best) {
        best = rank;
        winner = p;
      }
    }
    if (winner < 0) continue;
    sa_out_rr_[static_cast<std::size_t>(op)] = (winner + 1) % ports;
    sa_in_rr_[static_cast<std::size_t>(winner)] =
        (sa_request_vc_[static_cast<std::size_t>(winner)] + 1) % vcs;

    // --- Switch traversal --------------------------------------------------
    const int iv = sa_request_vc_[static_cast<std::size_t>(winner)];
    InputVc& ivc = in_vc(winner, iv);
    Flit flit = ivc.buffer.front();
    ivc.buffer.pop_front();
    --buffered_;
    flit.vc = ivc.out_vc;
    ++flit.hops;
    OutputVc& ovc = out_vc(ivc.out_port, ivc.out_vc);
    --ovc.credits;
    if (is_local_port(ivc.out_port)) {
      ejected_.push_back(flit);
      ++ovc.credits;  // endpoint sink consumes immediately
    } else {
      Channel* out = out_channels_[static_cast<std::size_t>(ivc.out_port)];
      SHG_ASSERT(out != nullptr, "network output port has no channel");
      out->push_flit(flit, now);
    }
    // Return the freed buffer slot upstream (network inputs only; the NI
    // observes local buffer occupancy directly).
    if (winner < num_net_ports_) {
      Channel* in = in_channels_[static_cast<std::size_t>(winner)];
      SHG_ASSERT(in != nullptr, "network input port has no channel");
      in->push_credit(Credit{iv}, now);
    }
    if (flit.tail) {
      ovc.busy = false;
      ivc.state = InputVc::State::kIdle;
      ivc.out_port = -1;
      ivc.out_vc = -1;
      ivc.routes = {};
      ivc.live_candidates.clear();
    }
  }
}

std::string Router::debug_state() const {
  std::string out;
  for (int p = 0; p < num_ports(); ++p) {
    for (int v = 0; v < config_.num_vcs; ++v) {
      const InputVc& ivc = in_vc(p, v);
      if (ivc.buffer.empty()) continue;
      const Flit& front = ivc.buffer.front();
      out += "  node " + std::to_string(node_) + " in(" + std::to_string(p) +
             "," + std::to_string(v) + ") state=" +
             std::to_string(static_cast<int>(ivc.state)) + " flits=" +
             std::to_string(ivc.buffer.size()) + " front{pkt=" +
             std::to_string(front.packet_id) + " dest=" +
             std::to_string(front.dest) + (front.head ? " H" : "") +
             (front.tail ? " T" : "") + "} out=(" +
             std::to_string(ivc.out_port) + "," + std::to_string(ivc.out_vc) +
             ")";
      if (ivc.out_port >= 0) {
        const OutputVc& ovc =
            output_vcs_[static_cast<std::size_t>(ivc.out_port * config_.num_vcs +
                                                 ivc.out_vc)];
        out += " credits=" + std::to_string(ovc.credits);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace shg::sim
