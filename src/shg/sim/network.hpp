// Network assembly: routers + channels + network interfaces for a topology.
//
// Port convention (shared with sim::RoutingFunction): network port i of
// router u connects to topology.graph().neighbors(u)[i].node through a pair
// of directed channels whose latency is the cost model's per-link estimate;
// the tile's endpoint ports follow.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "shg/sim/channel.hpp"
#include "shg/sim/router.hpp"
#include "shg/topo/topology.hpp"

namespace shg::sim {

/// Per-tile network interface: per-endpoint source queues that inject into
/// the router's local input ports (one flit per port and cycle, wormhole VC
/// continuity).
class NetworkInterface {
 public:
  NetworkInterface(int num_ports, int num_vcs);

  /// Queues a packet's flits on endpoint port `port`.
  void enqueue_packet(int port, const std::vector<Flit>& flits);

  /// Tries to inject one flit per endpoint port into the router.
  void inject(Router& router, Cycle now);

  long long queued_flits() const;

 private:
  int num_vcs_;
  std::vector<std::deque<Flit>> queues_;  ///< per endpoint port
  std::vector<int> open_vc_;              ///< VC of the packet in flight
  std::vector<int> next_vc_;              ///< round-robin VC pointer
};

/// The full network: owns routers, channels and NIs.
class Network {
 public:
  /// With a non-null `table`, routers look routes up in the precomputed
  /// table instead of calling `routing` per head flit.
  Network(const topo::Topology& topo, const std::vector<int>& link_latencies,
          const SimConfig& config, const RoutingFunction* routing,
          int endpoints_per_tile, const RouteTable* table = nullptr);

  int num_tiles() const { return static_cast<int>(routers_.size()); }
  int endpoints_per_tile() const { return endpoints_per_tile_; }

  Router& router(int node) { return *routers_[static_cast<std::size_t>(node)]; }
  NetworkInterface& interface(int node) {
    return nis_[static_cast<std::size_t>(node)];
  }

  /// Runs one simulation cycle: channel delivery, NI injection, router
  /// allocation/traversal. Ejected flits land in each router's ejected()
  /// list for the simulator to harvest.
  void step(Cycle now);

  /// Flits anywhere in the network (NI queues, router buffers, channels).
  long long flits_in_flight() const;

  /// Packets routed on a UGAL non-minimal leg, summed over all routers
  /// (0 under an effective kMinimal policy).
  long long ugal_nonminimal() const;

 private:
  int endpoints_per_tile_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<NetworkInterface> nis_;
};

}  // namespace shg::sim
