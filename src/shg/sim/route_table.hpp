// Precomputed routing tables: the simulator's head-flit hot path.
//
// RoutingFunction::route() returns a freshly allocated std::vector per call;
// the router used to invoke it for every head flit reaching the front of a
// VC, i.e. once per packet per hop per cycle of contention. A RouteTable
// evaluates the routing function ONCE for every reachable routing state at
// simulator construction and stores the candidate lists in a flat CSR-style
// arena; lookups are two array reads and return a span into the arena — no
// virtual call, no allocation.
//
// State space. The router queries routing in exactly two shapes:
//  * injection: (node, in_port = -1, in_vc = -1, dest) — fresh local packet;
//  * network hop: (node, in_port in [0, degree(node)), in_vc in [0, V), dest).
// Per node that is 1 + degree(node) * V input "slots", each with one row per
// destination. Rows with dest == node are empty (ejection is handled by the
// router directly and never consults routing). Rows whose state the routing
// function itself rejects as unreachable (it throws — e.g. an escape-path
// continuation for an arrival direction the escape path never produces) are
// also stored empty; the simulator never queries them, and the router's
// non-empty assertion reproduces live-mode failure if it ever does.
//
// Arena layout (deduplicated CSR):
//   global slot  g = slot_base_[node] + slot,
//                slot = 0 for injection, 1 + in_port * V + in_vc otherwise;
//   row          r = g * N + dest;
//   unique row   u = row_ids_[r];
//   candidates   arena_[offsets_[u] .. offsets_[u + 1]).
// Rows with identical candidate lists — overwhelmingly rows that differ
// only in the `in_vc` class, since most routing functions pick the same
// continuation regardless of the arrival VC — share one arena range behind
// the row-index indirection, so the arena and offsets shrink by roughly the
// VC count while every lookup stays an O(1) pair of array reads. All empty
// rows (ejection states, states the routing function rejects) collapse
// into a single empty unique row. Candidate order within a list is
// preserved from the routing function (the VC allocator tries candidates
// front to back), so simulation results are bit-identical with the table
// on or off, deduplicated or not.
//
// Equivalence checking: verify_against() re-derives every row from a live
// routing function and throws on the first mismatch; SimConfig's
// verify_route_table flag runs it at simulator construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "shg/sim/routing.hpp"

namespace shg::sim {

class RouteTable {
 public:
  /// Builds the full table by exhaustively querying `routing`. The routing
  /// function must be total over the state space described above.
  RouteTable(const topo::Topology& topo, const RoutingFunction& routing,
             int num_vcs);

  /// Candidates for a head flit at `node` that arrived through `in_port` on
  /// `in_vc` (-1/-1 for injection) and wants to reach `dest` (!= node).
  std::span<const RouteCandidate> lookup(int node, int in_port, int in_vc,
                                         int dest) const {
    const std::size_t row = row_index(node, in_port, in_vc, dest);
    const std::uint32_t unique = row_ids_[row];
    const std::uint32_t begin = offsets_[unique];
    const std::uint32_t end = offsets_[unique + 1];
    return {arena_.data() + begin, arena_.data() + end};
  }

  /// Name of the routing function the table was built from.
  const std::string& routing_name() const { return routing_name_; }

  /// UGAL decision inputs copied from the routing function the table was
  /// built from; nullptr for minimal routings. Lets a shared table carry
  /// everything the router's injection-time UGAL choice needs, so live
  /// routing and table mode stay bit-identical under kUgal too.
  const UgalInfo* ugal_info() const {
    return ugal_.num_nodes > 0 ? &ugal_ : nullptr;
  }

  int num_vcs() const { return num_vcs_; }
  int num_nodes() const { return num_nodes_; }

  /// True iff the table's dimensions (node count and per-node network port
  /// counts) match `topo` — the cheap structural guard against wiring a
  /// shared table into a simulator for a different topology.
  bool matches(const topo::Topology& topo) const {
    if (topo.graph().num_nodes() != num_nodes_) return false;
    for (graph::NodeId u = 0; u < num_nodes_; ++u) {
      if (topo.graph().degree(u) != degree_[static_cast<std::size_t>(u)]) {
        return false;
      }
    }
    return true;
  }

  /// Number of (node, in_port, in_vc, dest) rows, including empty ones.
  std::size_t num_rows() const { return row_ids_.size(); }

  /// Number of distinct candidate lists after deduplication.
  std::size_t num_unique_rows() const { return offsets_.size() - 1; }

  /// Candidates stored in the (deduplicated) arena.
  std::size_t num_candidates() const { return arena_.size(); }

  /// Candidates the routing function produced across all rows — what the
  /// arena would hold without deduplication.
  std::size_t num_candidates_undeduped() const {
    return num_candidates_undeduped_;
  }

  /// Bytes of the deduplicated table (arena + offsets + row indirection +
  /// per-node slot/degree indices).
  std::size_t memory_bytes() const {
    return arena_.size() * sizeof(RouteCandidate) +
           offsets_.size() * sizeof(std::uint32_t) +
           row_ids_.size() * sizeof(std::uint32_t) + index_bytes();
  }

  /// Bytes the pre-dedupe layout (one arena range and one offset per row,
  /// no indirection) would occupy for the same routing function.
  std::size_t undeduped_memory_bytes() const {
    return num_candidates_undeduped_ * sizeof(RouteCandidate) +
           (row_ids_.size() + 1) * sizeof(std::uint32_t) + index_bytes();
  }

  /// Re-derives every row from `routing` and throws shg::Error with the
  /// offending state on the first mismatch (candidate count, order, out
  /// port or VC range). Passing the function the table was built from must
  /// always succeed; passing a different function checks route equivalence.
  void verify_against(const RoutingFunction& routing) const;

 private:
  std::size_t index_bytes() const {
    return slot_base_.size() * sizeof(std::size_t) +
           degree_.size() * sizeof(int);
  }

  std::size_t row_index(int node, int in_port, int in_vc, int dest) const {
    const std::size_t slot =
        in_port < 0 ? 0
                    : 1 + static_cast<std::size_t>(in_port) *
                              static_cast<std::size_t>(num_vcs_) +
                          static_cast<std::size_t>(in_vc);
    return (slot_base_[static_cast<std::size_t>(node)] + slot) *
               static_cast<std::size_t>(num_nodes_) +
           static_cast<std::size_t>(dest);
  }

  int num_nodes_ = 0;
  int num_vcs_ = 0;
  std::vector<std::size_t> slot_base_;  ///< per node: first global slot
  std::vector<int> degree_;             ///< per node: network port count
  std::vector<std::uint32_t> row_ids_;  ///< per row: unique-row index
  std::vector<std::uint32_t> offsets_;  ///< CSR offsets (unique rows + 1)
  std::vector<RouteCandidate> arena_;   ///< deduplicated candidate lists
  std::size_t num_candidates_undeduped_ = 0;
  std::string routing_name_;
  UgalInfo ugal_;  ///< empty (num_nodes == 0) for minimal routings
};

}  // namespace shg::sim
