#include "shg/sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "shg/sim/concentration.hpp"
#include "shg/sim/soa_network.hpp"
#include "shg/sim/stats.hpp"

namespace shg::sim {

namespace {

/// Smallest VC count the (topology, policy) combination is deadlock-free
/// with. SimConfig::validate() cannot see either, so the check lives at
/// simulator construction: without it an under-provisioned config used to
/// surface as a deep SHG_REQUIRE from a routing constructor or, worse, a
/// silent saturation hang.
int min_vcs_for(const topo::Topology& topo, const SimConfig& config) {
  if (effective_routing_policy(config) == RoutingPolicy::kUgal) {
    return kUgalEscapeVcs + 1;  // 2 escape classes + >= 1 adaptive VC
  }
  switch (topo.kind()) {
    case topo::Kind::kRing:
    case topo::Kind::kTorus:
    case topo::Kind::kFoldedTorus:
      return 2;  // dateline class pair
    case topo::Kind::kSlimNoc:
    case topo::Kind::kCustom:
      return 2;  // adaptive band + escape VC
    default:
      return 1;
  }
}

}  // namespace

std::size_t packet_reserve_hint(double packet_prob, Cycle generation_end,
                                int num_tiles, int endpoints_per_tile) {
  // All factors are non-negative, but their product at 64x64+, high rate
  // and long measurement phases can exceed what a size_t cast (UB for
  // values > SIZE_MAX) or an upfront reserve should see. Work in double,
  // add the 10% headroom, then clamp to a 16M-record ceiling — past that
  // the vector's geometric growth is cheaper than a mis-sized commit.
  constexpr double kMaxReserve = static_cast<double>(std::size_t{1} << 24);
  double expected = packet_prob * static_cast<double>(generation_end) *
                    static_cast<double>(num_tiles) *
                    static_cast<double>(endpoints_per_tile);
  if (!(expected > 0.0)) expected = 0.0;  // also catches NaN
  const double want = std::min(expected * 1.1, kMaxReserve);
  return static_cast<std::size_t>(want) + 256;
}

Simulator::Simulator(const topo::Topology& topo,
                     std::vector<int> link_latencies, SimConfig config,
                     const TrafficPattern& pattern, int endpoints_per_tile,
                     std::unique_ptr<RoutingFunction> routing,
                     std::shared_ptr<const RouteTable> shared_table,
                     std::unique_ptr<InjectionProcess> process)
    : topo_(&topo),
      link_latencies_(std::move(link_latencies)),
      config_(config),
      pattern_(&pattern),
      endpoints_per_tile_(endpoints_per_tile),
      routing_(std::move(routing)),
      route_table_(std::move(shared_table)),
      process_(std::move(process)) {
  // Concentrated topologies (make_concentrated_mesh) carry their factor;
  // adopt it so callers need not thread it into SimConfig separately.
  if (config_.concentration == 1 && topo.concentration() > 1) {
    config_.concentration = topo.concentration();
  }
  SHG_REQUIRE(topo.concentration() == 1 ||
                  topo.concentration() == config_.concentration,
              "topology and SimConfig disagree on the concentration factor");
  if (config_.concentration > 1) {
    SHG_REQUIRE(endpoints_per_tile_ == 1,
                "concentrated runs define the endpoint count through the "
                "concentration factor; pass endpoints_per_tile = 1");
    endpoints_per_tile_ = config_.concentration;
  }
  config_.validate();
  {
    const int min_vcs = min_vcs_for(topo, config_);
    SHG_REQUIRE(
        config_.num_vcs >= min_vcs,
        "SimConfig::num_vcs = " + std::to_string(config_.num_vcs) +
            " is too small: " +
            (effective_routing_policy(config_) == RoutingPolicy::kUgal
                 ? std::string("the ugal routing policy needs ") +
                       std::to_string(min_vcs) +
                       " VCs (2 escape classes + 1 adaptive)"
                 : "this topology family's deadlock-free routing "
                   "(dateline/escape classes) needs " +
                       std::to_string(min_vcs) + " VCs"));
  }
  if (process_ == nullptr) {
    process_ = make_bernoulli(config_.injection_rate /
                              static_cast<double>(config_.packet_size_flits));
  }
  const bool ugal =
      effective_routing_policy(config_) == RoutingPolicy::kUgal;
  if (route_table_ != nullptr) {
    SHG_REQUIRE(route_table_->num_vcs() == config_.num_vcs,
                "shared route table was built for a different VC count");
    SHG_REQUIRE(route_table_->matches(topo),
                "shared route table was built for a different topology");
    SHG_REQUIRE((route_table_->ugal_info() != nullptr) == ugal,
                "shared route table was built for a different routing "
                "policy (minimal vs ugal)");
  }
  // With a shared table and no verification request, the routing function
  // is never consulted — skip constructing the default one (for table-based
  // families its constructor redoes the all-pairs work the shared table
  // exists to amortize).
  const bool need_routing =
      routing_ == nullptr &&
      (route_table_ == nullptr || config_.verify_route_table);
  if (need_routing) {
    routing_ = make_policy_routing(topo, config_);
  }
  if (route_table_ == nullptr && config_.use_route_table) {
    route_table_ =
        std::make_shared<const RouteTable>(topo, *routing_, config_.num_vcs);
  }
  if (route_table_ != nullptr && config_.verify_route_table) {
    route_table_->verify_against(*routing_);
  }
}

SimResult Simulator::run() {
  if (config_.use_soa_engine) {
    SoaEngine engine(*topo_, link_latencies_, config_, *pattern_,
                     endpoints_per_tile_, routing_.get(), route_table_.get(),
                     process_.get());
    const SimResult result = engine.run();
    last_ugal_nonminimal_ = engine.ugal_nonminimal();
    return result;
  }
  return run_aos();
}

SimResult Simulator::run_aos() {
  Network network(*topo_, link_latencies_, config_, routing_.get(),
                  endpoints_per_tile_, route_table_.get());
  Prng rng(config_.seed);
  process_->reset();

  const Cycle generation_end = config_.warmup_cycles + config_.measure_cycles;
  const Cycle hard_end = generation_end + config_.drain_cycles;
  const double packet_prob =
      config_.injection_rate / static_cast<double>(config_.packet_size_flits);
  // Terminal addressing for concentrated fabrics; with concentration == 1
  // the classic tile addressing below stays byte-for-byte the seed path.
  const Concentration conc = Concentration::make(
      topo_->rows(), topo_->cols(), config_.concentration);
  const bool concentrated = config_.concentration > 1;

  // Reserve the packet log from the expected injection volume (every
  // injection process targets this mean rate) instead of a fixed guess, so
  // high-rate runs do not pay repeated geometric reallocations of a
  // multi-megabyte vector.
  std::vector<PacketRecord> packets;
  packets.reserve(packet_reserve_hint(packet_prob, generation_end,
                                      topo_->num_tiles(),
                                      endpoints_per_tile_));

  long long measured_created = 0;
  long long measured_ejected = 0;
  long long flits_ejected_in_window = 0;
  Distribution latencies(config_.latency_sample_cap);
  double hops_sum = 0.0;
  std::vector<double> source_latency_sum(
      static_cast<std::size_t>(topo_->num_tiles()), 0.0);
  std::vector<long long> source_packets(
      static_cast<std::size_t>(topo_->num_tiles()), 0);
  Cycle last_ejection = 0;

  // Reusable per-packet flit staging. Head/tail flags depend only on the
  // slot, so they are set once; the per-packet loop only fills the fields
  // that actually vary (id, endpoints, creation time).
  std::vector<Flit> scratch_flits(
      static_cast<std::size_t>(config_.packet_size_flits));
  for (int f = 0; f < config_.packet_size_flits; ++f) {
    scratch_flits[static_cast<std::size_t>(f)].head = f == 0;
    scratch_flits[static_cast<std::size_t>(f)].tail =
        f == config_.packet_size_flits - 1;
  }

  SimResult result;
  result.offered_rate = config_.injection_rate;

  Cycle now = 0;
  for (; now < hard_end; ++now) {
    // --- Packet generation (injection process per endpoint port) ---------
    if (now < generation_end) {
      for (int tile = 0; tile < network.num_tiles(); ++tile) {
        for (int port = 0; port < endpoints_per_tile_; ++port) {
          const int source = tile * endpoints_per_tile_ + port;
          if (!process_->inject(source, rng)) continue;
          int dest_tile;
          int eject_port = -1;
          if (concentrated) {
            // Patterns address terminals; a destination on the same tile
            // but a different terminal is real traffic (it still crosses
            // the router), only the exact self-terminal is a fixed point.
            const int src_terminal = conc.terminal(tile, port);
            const int dest_terminal = pattern_->dest(src_terminal, rng);
            if (dest_terminal == src_terminal) continue;
            dest_tile = conc.tile_of(dest_terminal);
            eject_port = conc.port_of(dest_terminal);
          } else {
            dest_tile = pattern_->dest(tile, rng);
            if (dest_tile == tile) continue;  // fixed point of a permutation
          }
          const int id = static_cast<int>(packets.size());
          const bool measured = now >= config_.warmup_cycles;
          packets.push_back(PacketRecord{now, -1, 0, measured});
          if (measured) ++measured_created;
          for (int f = 0; f < config_.packet_size_flits; ++f) {
            Flit& flit = scratch_flits[static_cast<std::size_t>(f)];
            flit.packet_id = id;
            flit.src = tile;
            flit.dest = dest_tile;
            flit.eject_port = eject_port;
            flit.create_cycle = now;
          }
          network.interface(tile).enqueue_packet(port, scratch_flits);
        }
      }
    }

    // --- One network cycle -------------------------------------------------
    network.step(now);

    // --- Harvest ejected flits ---------------------------------------------
    for (int tile = 0; tile < network.num_tiles(); ++tile) {
      auto& ejected = network.router(tile).ejected();
      for (const Flit& flit : ejected) {
        SHG_ASSERT(flit.dest == tile, "flit ejected at the wrong tile");
        last_ejection = now;
        if (now >= config_.warmup_cycles && now < generation_end) {
          ++flits_ejected_in_window;
        }
        if (!flit.tail) continue;
        auto& record = packets[static_cast<std::size_t>(flit.packet_id)];
        SHG_ASSERT(record.eject < 0, "packet ejected twice");
        record.eject = now;
        record.hops = flit.hops;
        if (record.measured) {
          ++measured_ejected;
          const double latency = static_cast<double>(now - record.create + 1);
          latencies.add(latency);
          hops_sum += record.hops;
          source_latency_sum[static_cast<std::size_t>(flit.src)] += latency;
          ++source_packets[static_cast<std::size_t>(flit.src)];
        }
      }
      ejected.clear();
    }

    // --- Termination checks --------------------------------------------------
    if (now >= generation_end) {
      if (measured_ejected == measured_created) break;
      // Deadlock/livelock watchdog: traffic in flight but nothing ejects.
      if (now - last_ejection > 20000 && network.flits_in_flight() > 0) {
        break;
      }
    }
  }

  last_ugal_nonminimal_ = network.ugal_nonminimal();
  result.cycles_run = now;
  result.measured_packets = measured_ejected;
  result.drained = measured_ejected == measured_created;
  result.accepted_rate =
      static_cast<double>(flits_ejected_in_window) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(network.num_tiles()) *
       static_cast<double>(endpoints_per_tile_));
  if (measured_ejected > 0) {
    result.avg_packet_latency = latencies.mean();
    result.max_packet_latency = latencies.max();
    result.p50_packet_latency = latencies.percentile(0.50);
    result.p95_packet_latency = latencies.percentile(0.95);
    result.p99_packet_latency = latencies.percentile(0.99);
    result.avg_hops = hops_sum / static_cast<double>(measured_ejected);
    std::vector<double> per_source;
    for (std::size_t s = 0; s < source_packets.size(); ++s) {
      if (source_packets[s] > 0) {
        per_source.push_back(source_latency_sum[s] /
                             static_cast<double>(source_packets[s]));
      }
    }
    if (!per_source.empty()) {
      result.fairness = fairness_ratio(per_source);
    }
  }
  return result;
}

}  // namespace shg::sim
