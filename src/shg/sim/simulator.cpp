#include "shg/sim/simulator.hpp"

#include <algorithm>

#include "shg/sim/stats.hpp"

namespace shg::sim {

Simulator::Simulator(const topo::Topology& topo,
                     std::vector<int> link_latencies, SimConfig config,
                     const TrafficPattern& pattern, int endpoints_per_tile,
                     std::unique_ptr<RoutingFunction> routing,
                     std::shared_ptr<const RouteTable> shared_table,
                     std::unique_ptr<InjectionProcess> process)
    : topo_(&topo),
      link_latencies_(std::move(link_latencies)),
      config_(config),
      pattern_(&pattern),
      endpoints_per_tile_(endpoints_per_tile),
      routing_(std::move(routing)),
      route_table_(std::move(shared_table)),
      process_(std::move(process)) {
  config_.validate();
  if (process_ == nullptr) {
    process_ = make_bernoulli(config_.injection_rate /
                              static_cast<double>(config_.packet_size_flits));
  }
  if (route_table_ != nullptr) {
    SHG_REQUIRE(route_table_->num_vcs() == config_.num_vcs,
                "shared route table was built for a different VC count");
    SHG_REQUIRE(route_table_->matches(topo),
                "shared route table was built for a different topology");
  }
  // With a shared table and no verification request, the routing function
  // is never consulted — skip constructing the default one (for table-based
  // families its constructor redoes the all-pairs work the shared table
  // exists to amortize).
  const bool need_routing =
      routing_ == nullptr &&
      (route_table_ == nullptr || config_.verify_route_table);
  if (need_routing) {
    routing_ = make_default_routing(topo, config_.num_vcs);
  }
  if (route_table_ == nullptr && config_.use_route_table) {
    route_table_ =
        std::make_shared<const RouteTable>(topo, *routing_, config_.num_vcs);
  }
  if (route_table_ != nullptr && config_.verify_route_table) {
    route_table_->verify_against(*routing_);
  }
}

SimResult Simulator::run() {
  Network network(*topo_, link_latencies_, config_, routing_.get(),
                  endpoints_per_tile_, route_table_.get());
  Prng rng(config_.seed);
  process_->reset();

  const Cycle generation_end = config_.warmup_cycles + config_.measure_cycles;
  const Cycle hard_end = generation_end + config_.drain_cycles;
  const double packet_prob =
      config_.injection_rate / static_cast<double>(config_.packet_size_flits);

  // Reserve the packet log from the expected injection volume (every
  // injection process targets this mean rate; + 10% headroom) instead of a
  // fixed guess, so high-rate runs do not pay repeated geometric
  // reallocations of a multi-megabyte vector.
  std::vector<PacketRecord> packets;
  const double expected_packets =
      packet_prob * static_cast<double>(generation_end) *
      static_cast<double>(topo_->num_tiles()) *
      static_cast<double>(endpoints_per_tile_);
  packets.reserve(static_cast<std::size_t>(expected_packets * 1.1) + 256);

  long long measured_created = 0;
  long long measured_ejected = 0;
  long long flits_ejected_in_window = 0;
  Distribution latencies;
  double hops_sum = 0.0;
  std::vector<double> source_latency_sum(
      static_cast<std::size_t>(topo_->num_tiles()), 0.0);
  std::vector<long long> source_packets(
      static_cast<std::size_t>(topo_->num_tiles()), 0);
  Cycle last_ejection = 0;

  // Reusable per-packet flit staging. Head/tail flags depend only on the
  // slot, so they are set once; the per-packet loop only fills the fields
  // that actually vary (id, endpoints, creation time).
  std::vector<Flit> scratch_flits(
      static_cast<std::size_t>(config_.packet_size_flits));
  for (int f = 0; f < config_.packet_size_flits; ++f) {
    scratch_flits[static_cast<std::size_t>(f)].head = f == 0;
    scratch_flits[static_cast<std::size_t>(f)].tail =
        f == config_.packet_size_flits - 1;
  }

  SimResult result;
  result.offered_rate = config_.injection_rate;

  Cycle now = 0;
  for (; now < hard_end; ++now) {
    // --- Packet generation (injection process per endpoint port) ---------
    if (now < generation_end) {
      for (int tile = 0; tile < network.num_tiles(); ++tile) {
        for (int port = 0; port < endpoints_per_tile_; ++port) {
          const int source = tile * endpoints_per_tile_ + port;
          if (!process_->inject(source, rng)) continue;
          const int dest = pattern_->dest(tile, rng);
          if (dest == tile) continue;  // fixed point of a permutation
          const int id = static_cast<int>(packets.size());
          const bool measured = now >= config_.warmup_cycles;
          packets.push_back(PacketRecord{now, -1, 0, measured});
          if (measured) ++measured_created;
          for (int f = 0; f < config_.packet_size_flits; ++f) {
            Flit& flit = scratch_flits[static_cast<std::size_t>(f)];
            flit.packet_id = id;
            flit.src = tile;
            flit.dest = dest;
            flit.create_cycle = now;
          }
          network.interface(tile).enqueue_packet(port, scratch_flits);
        }
      }
    }

    // --- One network cycle -------------------------------------------------
    network.step(now);

    // --- Harvest ejected flits ---------------------------------------------
    for (int tile = 0; tile < network.num_tiles(); ++tile) {
      auto& ejected = network.router(tile).ejected();
      for (const Flit& flit : ejected) {
        SHG_ASSERT(flit.dest == tile, "flit ejected at the wrong tile");
        last_ejection = now;
        if (now >= config_.warmup_cycles && now < generation_end) {
          ++flits_ejected_in_window;
        }
        if (!flit.tail) continue;
        auto& record = packets[static_cast<std::size_t>(flit.packet_id)];
        SHG_ASSERT(record.eject < 0, "packet ejected twice");
        record.eject = now;
        record.hops = flit.hops;
        if (record.measured) {
          ++measured_ejected;
          const double latency = static_cast<double>(now - record.create + 1);
          latencies.add(latency);
          hops_sum += record.hops;
          source_latency_sum[static_cast<std::size_t>(flit.src)] += latency;
          ++source_packets[static_cast<std::size_t>(flit.src)];
        }
      }
      ejected.clear();
    }

    // --- Termination checks --------------------------------------------------
    if (now >= generation_end) {
      if (measured_ejected == measured_created) break;
      // Deadlock/livelock watchdog: traffic in flight but nothing ejects.
      if (now - last_ejection > 20000 && network.flits_in_flight() > 0) {
        break;
      }
    }
  }

  result.cycles_run = now;
  result.measured_packets = measured_ejected;
  result.drained = measured_ejected == measured_created;
  result.accepted_rate =
      static_cast<double>(flits_ejected_in_window) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(network.num_tiles()) *
       static_cast<double>(endpoints_per_tile_));
  if (measured_ejected > 0) {
    result.avg_packet_latency = latencies.mean();
    result.max_packet_latency = latencies.max();
    result.p50_packet_latency = latencies.percentile(0.50);
    result.p95_packet_latency = latencies.percentile(0.95);
    result.p99_packet_latency = latencies.percentile(0.99);
    result.avg_hops = hops_sum / static_cast<double>(measured_ejected);
    std::vector<double> per_source;
    for (std::size_t s = 0; s < source_packets.size(); ++s) {
      if (source_packets[s] > 0) {
        per_source.push_back(source_latency_sum[s] /
                             static_cast<double>(source_packets[s]));
      }
    }
    if (!per_source.empty()) {
      result.fairness = fairness_ratio(per_source);
    }
  }
  return result;
}

}  // namespace shg::sim
