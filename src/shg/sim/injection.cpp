#include "shg/sim/injection.hpp"

#include <algorithm>
#include <vector>

namespace shg::sim {

namespace {

class Bernoulli final : public InjectionProcess {
 public:
  explicit Bernoulli(double packet_prob) : prob_(packet_prob) {
    SHG_REQUIRE(packet_prob >= 0.0 && packet_prob <= 1.0,
                "injection probability must be in [0, 1]");
  }
  bool inject(int, Prng& rng) override { return rng.chance(prob_); }
  std::string name() const override { return "bernoulli"; }

 private:
  double prob_;
};

class OnOff final : public InjectionProcess {
 public:
  OnOff(double packet_prob, double alpha, double beta, int num_sources)
      : alpha_(alpha),
        beta_(beta),
        burst_prob_(packet_prob * (alpha + beta) / alpha),
        on_(static_cast<std::size_t>(num_sources), 0) {
    SHG_REQUIRE(alpha > 0.0 && alpha <= 1.0,
                "on-off alpha (off->on) must be in (0, 1]");
    SHG_REQUIRE(beta >= 0.0 && beta < 1.0,
                "on-off beta (on->off) must be in [0, 1)");
    SHG_REQUIRE(num_sources >= 1, "need at least one source");
    SHG_REQUIRE(packet_prob >= 0.0, "injection probability must be >= 0");
    // Steady-state duty cycle is alpha / (alpha + beta); the burst
    // probability compensates so the mean rate matches packet_prob.
    SHG_REQUIRE(burst_prob_ <= 1.0,
                "offered rate unreachable with this on-off duty cycle "
                "(packet_prob * (alpha + beta) / alpha must be <= 1)");
  }

  bool inject(int source, Prng& rng) override {
    auto& on = on_[static_cast<std::size_t>(source)];
    if (on) {
      if (rng.chance(beta_)) on = 0;
    } else {
      if (rng.chance(alpha_)) on = 1;
    }
    return on != 0 && rng.chance(burst_prob_);
  }

  std::string name() const override { return "onoff"; }

  void reset() override { std::fill(on_.begin(), on_.end(), 0); }

 private:
  double alpha_;
  double beta_;
  double burst_prob_;
  std::vector<std::uint8_t> on_;
};

}  // namespace

std::unique_ptr<InjectionProcess> make_bernoulli(double packet_prob) {
  return std::make_unique<Bernoulli>(packet_prob);
}

std::unique_ptr<InjectionProcess> make_on_off(double packet_prob,
                                              double alpha, double beta,
                                              int num_sources) {
  return std::make_unique<OnOff>(packet_prob, alpha, beta, num_sources);
}

}  // namespace shg::sim
