// Injection processes (BookSim-style): decide *when* a source endpoint
// injects a packet, independently of the TrafficPattern that decides
// *where* it goes. Splitting the temporal behavior out of the simulator
// loop lets one workload pair any pattern with any process (e.g. a
// hotspot pattern driven by bursty on-off sources).
#pragma once

#include <memory>
#include <string>

#include "shg/common/prng.hpp"

namespace shg::sim {

/// Decides, per source endpoint and cycle, whether a packet is injected.
///
/// Contract (relied on for reproducibility): the simulator calls
/// inject() exactly once per (source, cycle), sources in ascending order
/// within a cycle, so the PRNG draw sequence — and therefore the whole
/// simulation — is a pure function of the seed. Implementations may keep
/// per-source state (reset() re-initializes it before every run).
class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;
  /// One trial for `source` this cycle; may draw from `rng`.
  virtual bool inject(int source, Prng& rng) = 0;
  virtual std::string name() const = 0;
  /// Restores the initial per-source state (start of Simulator::run).
  virtual void reset() {}
};

/// Memoryless process: inject with probability `packet_prob` each cycle.
/// Draw-for-draw identical to the pre-split simulator injection loop, so
/// results are bit-identical with the same seed.
std::unique_ptr<InjectionProcess> make_bernoulli(double packet_prob);

/// Two-state Markov (on-off) process: each source flips off->on with
/// probability `alpha` and on->off with probability `beta` per cycle, and
/// injects only while on, at a burst probability scaled so the long-run
/// mean injection rate still equals `packet_prob`
/// (burst = packet_prob * (alpha + beta) / alpha, which must be <= 1).
/// Sources start off; warmup absorbs the transient.
std::unique_ptr<InjectionProcess> make_on_off(double packet_prob,
                                              double alpha, double beta,
                                              int num_sources);

}  // namespace shg::sim
