// Trace-driven workloads: a compact checksummed on-disk trace format
// (`shg.trace.v1`, in the `shg.cache.v1` idiom) and a replay engine that
// drives the simulator through the existing InjectionProcess /
// TrafficPattern seam.
//
// A trace is an ordered list of message records — per-source timestamp
// deltas, destination terminal ids, message sizes in flits, and optional
// message-dependency edges. Replay is a PURE FUNCTION OF THE TRACE BYTES
// (plus the grid shape and packet size): it draws nothing from the
// simulation PRNG and observes no network state, so the injection schedule
// stays a pure function of the run's inputs — the invariant the SoA
// engine's pregeneration and whole-network quiescence fast-forward rely on
// — and both engines replay a trace bit-identically.
//
// Dependencies are resolved at schedule-build time, not delivery time: a
// record with `dep = j` starts no earlier than the cycle record j finished
// injecting. Waiting on *delivery* would make the schedule depend on
// network state and silently fork the two engines; injection-order
// dependencies keep producer-consumer shaped traces meaningful (a reply
// never precedes its request's injection) while preserving purity.
//
// On-disk layout (all integers little-endian):
//   [0, 8)    magic "SHGTRACE"
//   [8, 12)   format version (1)
//   [12, 16)  reserved (0)
//   [16, 24)  source count (injection source index space)
//   [24, 32)  terminal count (destination id space)
//   [32, 40)  record count
//   [40, 48)  FNV-1a 64 checksum of the record payload bytes
//   [48, ...) records, 24 B each: source u32, timestamp delta u32 (cycles
//             since this source's previous record; absolute for its
//             first), destination u32, size in flits u32, dependency u64
//             (index of an earlier record, or ~0 for none)
//
// Records are stored in global time order: the absolute timestamps
// reconstructed from the per-source deltas must be nondecreasing in file
// order (the loader rejects violations). The loader validates everything —
// magic, version, truncation, checksum, id ranges, sizes, dependency
// shape, timestamp order — and rejects a bad file with a `shg::log`
// warning plus a clean `shg::Error`; it never crashes or reads past the
// buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shg/sim/flit.hpp"
#include "shg/sim/injection.hpp"
#include "shg/sim/traffic.hpp"

namespace shg::sim {

struct TrafficSpec;

/// Sentinel: the record depends on nothing.
inline constexpr std::uint64_t kTraceNoDep = ~0ULL;

/// One message: `source` injects `size_flits` flits toward `dest` at the
/// absolute cycle reconstructed from the per-source `delta` chain, no
/// earlier than the injection end of record `dep` (if any).
struct TraceRecord {
  std::uint32_t source = 0;      ///< injection source (tile * ports + port)
  std::uint32_t delta = 0;       ///< cycles since this source's last record
  std::uint32_t dest = 0;        ///< terminal id (tile id when unconcentrated)
  std::uint32_t size_flits = 1;  ///< message size, >= 1
  std::uint64_t dep = kTraceNoDep;  ///< earlier record index or kTraceNoDep

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// An in-memory trace: the id spaces it was recorded against plus the
/// ordered records. `num_sources` is the injection source index space
/// (tiles x local ports); `num_terminals` is the destination id space —
/// the concentrated terminal grid when recorded with concentration > 1,
/// the tile grid otherwise.
struct Trace {
  std::uint32_t num_sources = 0;
  std::uint32_t num_terminals = 0;
  std::vector<TraceRecord> records;

  /// FNV-1a 64 over the canonical serialized bytes (counts + records).
  /// Two traces differing in any single byte of any record or header
  /// count hash differently; this is the content ingredient of
  /// `fingerprint_sim_cell` for trace cells.
  std::uint64_t content_hash() const;

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Semantic validation shared by the loader and the replay factory:
/// nonempty id spaces, in-range sources/destinations, nonzero sizes,
/// backward-only dependencies, globally nondecreasing reconstructed
/// timestamps (and a 2^48 timestamp cap so cycle arithmetic cannot
/// overflow). Throws shg::Error naming `context` on the first violation.
void validate_trace(const Trace& trace, const std::string& context);

/// Writes `trace` to `path` in the shg.trace.v1 layout. The writer does
/// NOT validate (tests craft deliberately invalid files through it);
/// throws shg::Error on I/O failure.
void save_trace(const Trace& trace, const std::string& path);

/// Reads and fully validates one trace file. Every rejection — absent
/// file, truncation, wrong magic/version, checksum mismatch, or any
/// validate_trace violation — emits a `shg::log` warning naming the path
/// and the reason, then throws a clean shg::Error.
Trace load_trace(const std::string& path);

/// A trace replayed onto a grid: the pattern/process pair to hand to the
/// Simulator. The two objects share the replay cursor (the process decides
/// *when* and stages *where* for the pattern, which the engine queries
/// immediately after a positive injection draw); hand both to ONE
/// Simulator at a time.
struct TraceWorkload {
  std::unique_ptr<TrafficPattern> pattern;
  std::unique_ptr<InjectionProcess> process;
};

/// Builds the replay workload for a grid with `num_sources` injection
/// sources and `num_terminals` destination ids (both must match the trace
/// header — replaying a trace on the wrong grid is a spec error, not a
/// truncation). Messages larger than `packet_size_flits` are split into
/// ceil(size / packet_size) packets injected on consecutive cycles;
/// `scale` compresses time (replay cycle = floor(timestamp / scale), so
/// scale 2 doubles the offered intensity). The schedule is built here,
/// once; inject() afterwards is a cursor walk that draws no randomness.
TraceWorkload make_trace_replay(std::shared_ptr<const Trace> trace,
                                int num_sources, int num_terminals,
                                int packet_size_flits, double scale = 1.0);

/// Recording knobs for trace_from_spec: the grid and injection parameters
/// of the live run being materialized.
struct TraceRecordOptions {
  int rows = 1;
  int cols = 1;
  int concentration = 1;       ///< terminals per router (see concentration.hpp)
  int endpoints_per_tile = 1;  ///< ignored when concentration > 1
  double injection_rate = 0.1;  ///< flits / cycle / source
  int packet_size_flits = 1;
  Cycle cycles = 1000;  ///< generation window length (warmup + measure)
  std::uint64_t seed = 1;
};

/// Materializes a synthetic spec into a trace by replaying the engines'
/// generation loop draw-for-draw (cycle -> tile -> port, inject draw then
/// destination draw, same fixed-point skip). Replaying the result through
/// make_trace_replay with the same grid, packet size and generation window
/// reproduces the live run's injection schedule exactly — the differential
/// oracle the trace tests gate on.
Trace trace_from_spec(const TrafficSpec& spec, const TraceRecordOptions& opt);

}  // namespace shg::sim
