// Input-queued virtual-channel router.
//
// Microarchitecture (one cycle per hop, matching the paper's assumption
// that every router adds at least one cycle):
//  * per input port: V virtual channels, each a D-flit FIFO;
//  * route computation when a head flit reaches the front of its VC;
//  * separable VC allocation (round-robin per output VC);
//  * separable switch allocation (input-first: round-robin VC pick per
//    input port, then round-robin input pick per output port);
//  * credit-based flow control: one credit per freed buffer slot travels
//    back across the upstream channel.
//
// Port convention: ports [0, num_net_ports) attach to channels toward
// graph().neighbors(node)[i]; ports [num_net_ports, num_net_ports +
// num_local_ports) attach to the tile's endpoints (injection/ejection).
#pragma once

#include <deque>
#include <span>
#include <vector>

#include "shg/sim/channel.hpp"
#include "shg/sim/config.hpp"
#include "shg/sim/route_table.hpp"
#include "shg/sim/routing.hpp"

namespace shg::sim {

class Router {
 public:
  /// With a non-null `table`, head-flit route computation is a table lookup
  /// (no virtual call, no allocation); otherwise `routing` is called live.
  Router(int node, int num_net_ports, int num_local_ports,
         const SimConfig& config, const RoutingFunction* routing,
         const RouteTable* table = nullptr);

  int node() const { return node_; }
  int num_ports() const { return num_net_ports_ + num_local_ports_; }

  /// Wires network port `port` (input side: flits arriving from the
  /// neighbor; output side: flits leaving toward the neighbor).
  void attach(int port, Channel* in_channel, Channel* out_channel);

  /// Injection from the network interface: appends a flit to local input
  /// port `local_port` on `vc` if the buffer has space. Returns success.
  /// Injection costs one router delay, so the flit is switchable at
  /// now + router_delay_cycles ("1 cycle to inject the flit", Section IV-C).
  bool try_inject(int local_port, int vc, const Flit& flit, Cycle now);

  /// Free slots in a local input VC (used by the NI to pick VCs).
  int local_vc_space(int local_port, int vc) const;

  /// Phase 1 of a cycle: receive flits and credits from channels.
  void deliver_phase(Cycle now);

  /// Phase 2 of a cycle: route computation, VC allocation, switch
  /// allocation and traversal; pushes flits/credits into channels.
  void allocate_phase(Cycle now);

  /// Flits ejected to this tile's endpoints during the last allocate_phase;
  /// drained by the network interface each cycle.
  std::vector<Flit>& ejected() { return ejected_; }

  /// Total buffered flits (for progress/deadlock accounting). O(1): the
  /// router maintains the count as flits enter and leave its input VCs.
  long long buffered_flits() const { return buffered_; }

  /// Human-readable dump of all occupied input VCs and allocated output VCs
  /// (deadlock diagnostics).
  std::string debug_state() const;

  /// Packets this router sent on a UGAL non-minimal leg (source routers
  /// only; always 0 under an effective kMinimal policy).
  long long ugal_nonminimal() const { return ugal_nonminimal_; }

 private:
  struct InputVc {
    std::deque<Flit> buffer;
    enum class State { kIdle, kVcAlloc, kActive } state = State::kIdle;
    /// Candidates of the head packet: a view into the route table's arena,
    /// into `live_candidates`, or over `eject` — valid until the tail leaves.
    std::span<const RouteCandidate> routes;
    std::vector<RouteCandidate> live_candidates;  ///< live-routing mode only
    RouteCandidate eject;                         ///< ejection storage
    int out_port = -1;
    int out_vc = -1;
  };
  struct OutputVc {
    bool busy = false;
    int credits = 0;
  };

  InputVc& in_vc(int port, int vc) {
    return input_vcs_[static_cast<std::size_t>(port * config_.num_vcs + vc)];
  }
  const InputVc& in_vc(int port, int vc) const {
    return input_vcs_[static_cast<std::size_t>(port * config_.num_vcs + vc)];
  }
  OutputVc& out_vc(int port, int vc) {
    return output_vcs_[static_cast<std::size_t>(port * config_.num_vcs + vc)];
  }

  bool is_local_port(int port) const { return port >= num_net_ports_; }

  /// Computes route candidates for the head flit of (port, vc).
  void compute_route(int port, int vc);

  /// UGAL-mode route computation for a non-ejecting head: the injection-time
  /// minimal/non-minimal decision, the via-leg candidate splice and the
  /// escape-band passthrough (see compute_route).
  void compute_route_ugal(InputVc& ivc, int in_port, int in_vc);

  /// Candidate row for state (in_port, in_vc) toward `dest`: a table lookup
  /// or a live routing call materialized into `storage`.
  std::span<const RouteCandidate> row(int in_port, int in_vc, int dest,
                                      std::vector<RouteCandidate>& storage)
      const;

  /// Flits occupying the downstream adaptive-band buffers of `out_port`
  /// (buffer depth minus credits, summed over VCs [kUgalEscapeVcs, V)) —
  /// the congestion estimate of the UGAL source decision.
  int adaptive_occupancy(int out_port);

  int node_;
  int num_net_ports_;
  int num_local_ports_;
  SimConfig config_;
  const RoutingFunction* routing_;
  const RouteTable* table_;
  bool ugal_mode_ = false;
  const UgalInfo* ugal_info_ = nullptr;
  long long ugal_nonminimal_ = 0;

  std::vector<Channel*> in_channels_;   ///< per port; null for local ports
  std::vector<Channel*> out_channels_;  ///< per port; null for local ports
  long long buffered_ = 0;              ///< flits across all input VCs
  std::vector<InputVc> input_vcs_;      ///< [port][vc] flattened
  std::vector<OutputVc> output_vcs_;    ///< [port][vc] flattened
  std::vector<Flit> ejected_;

  // Rotating-priority state for the allocators.
  std::vector<int> va_rr_;      ///< per output VC
  std::vector<int> sa_in_rr_;   ///< per input port
  std::vector<int> sa_out_rr_;  ///< per output port

  // Scratch buffers reused across cycles to avoid per-cycle allocation.
  std::vector<std::pair<int, int>> va_requests_;  ///< (outVC key, inVC key)
  std::vector<int> sa_request_port_;  ///< per input port: requested out port
  std::vector<int> sa_request_vc_;    ///< per input port: chosen input VC
};

}  // namespace shg::sim
