// Routing functions for the cycle-accurate simulator.
//
// Each topology family gets a provably deadlock-free routing function (the
// per-family deadlock-freedom arguments live in ARCHITECTURE.md, "Deadlock
// freedom by routing family"). The port numbering convention is shared with
// sim::Network: output/input port i of router u talks to
// topology.graph().neighbors(u)[i].node; endpoint (local) ports follow the
// network ports.
//
//  * XYHammingRouting — mesh / flattened butterfly / sparse Hamming graph /
//    Ruche: route the row dimension first with monotone (never overshoot)
//    skip steps, then the column dimension. Rows/columns that form cycles
//    (torus, folded torus) use shortest-direction routing with a dateline
//    VC-class upgrade instead.
//  * RingRouting — the single-cycle ring topology, dateline scheme.
//  * EcubeRouting — hypercube, ascending bit order.
//  * TableEscapeRouting — arbitrary graphs (SlimNoC): fully adaptive minimal
//    routing on VCs [1, V) with an up*/down* escape path on VC 0
//    (conservative Duato protocol: once on the escape class, stay on it).
//  * UgalRouting — UGAL-class adaptive wrapper over any family: fully
//    adaptive minimal candidates on VCs [kUgalEscapeVcs, V) plus the
//    family's own deadlock-free routing, squeezed onto the reserved escape
//    classes [0, kUgalEscapeVcs), as the Duato escape network. The router
//    consults ugal_info() at injection time for the Valiant intermediate
//    and the hop counts of the minimal/non-minimal legs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "shg/topo/topology.hpp"

namespace shg::sim {

struct SimConfig;

/// One legal (output port, VC range) choice for a head flit.
struct RouteCandidate {
  int out_port = 0;
  int vc_begin = 0;  ///< allowed VCs: [vc_begin, vc_end)
  int vc_end = 0;
};

/// VCs reserved for the escape network under UGAL routing: adaptive choice
/// lives on [kUgalEscapeVcs, num_vcs), the per-family deadlock-free routing
/// on [0, kUgalEscapeVcs). Two classes because the dateline families need a
/// class pair of their own to stay deadlock-free.
inline constexpr int kUgalEscapeVcs = 2;

/// The UGAL source-decision inputs, precomputed per (src, dest) pair:
/// the seed-drawn Valiant intermediate and the minimal hop distances the
/// router weighs occupancy with. Flat src * num_nodes + dest indexing;
/// via == -1 means no non-minimal alternative exists for the pair (src ==
/// dest, or fewer than three nodes).
struct UgalInfo {
  std::vector<std::int32_t> via;   ///< Valiant intermediate per (src, dest)
  std::vector<std::int32_t> hops;  ///< minimal hop distance per (src, dest)
  int num_nodes = 0;

  std::int32_t via_of(int src, int dest) const {
    return via[static_cast<std::size_t>(src) *
                   static_cast<std::size_t>(num_nodes) +
               static_cast<std::size_t>(dest)];
  }
  std::int32_t hops_between(int src, int dest) const {
    return hops[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(num_nodes) +
                static_cast<std::size_t>(dest)];
  }
};

/// Interface: given where a head flit is (router `node`, arrived through
/// `in_port` on VC `in_vc`; in_port == -1 for freshly injected packets) and
/// where it wants to go, list the legal next hops. Candidates are ordered by
/// preference (the VC allocator tries them front to back).
class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Precondition: node != dest (ejection is handled by the router).
  virtual std::vector<RouteCandidate> route(int node, int in_port, int in_vc,
                                            int dest) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Non-null only for UGAL-class routing: the per-pair Valiant
  /// intermediates and hop counts the router's injection-time decision
  /// needs. Minimal routings return nullptr and the router never consults
  /// occupancy.
  virtual const UgalInfo* ugal_info() const { return nullptr; }
};

/// Monotone XY routing over row/column "lines" with per-line path or
/// dateline-cycle behaviour; covers mesh, FB, SHG, Ruche, torus and folded
/// torus. Requires num_vcs >= 2 when any line is a cycle.
std::unique_ptr<RoutingFunction> make_xy_hamming_routing(
    const topo::Topology& topo, int num_vcs);

/// Dateline routing on the single cycle of a ring topology.
std::unique_ptr<RoutingFunction> make_ring_routing(const topo::Topology& topo,
                                                   int num_vcs);

/// Dimension-order (ascending bit) routing for the hypercube.
std::unique_ptr<RoutingFunction> make_ecube_routing(const topo::Topology& topo,
                                                    int num_vcs);

/// Adaptive minimal + up*/down* escape VC for arbitrary topologies.
/// Requires num_vcs >= 2.
std::unique_ptr<RoutingFunction> make_table_escape_routing(
    const topo::Topology& topo, int num_vcs);

/// Default deadlock-free routing for a topology family.
std::unique_ptr<RoutingFunction> make_default_routing(
    const topo::Topology& topo, int num_vcs);

/// UGAL-class adaptive routing over any family: adaptive minimal candidates
/// on VCs [kUgalEscapeVcs, num_vcs), the family default routing (built for
/// kUgalEscapeVcs VCs) as the Duato escape network on [0, kUgalEscapeVcs),
/// and Valiant intermediates drawn deterministically from `via_seed`.
/// Requires num_vcs >= kUgalEscapeVcs + 1.
std::unique_ptr<RoutingFunction> make_ugal_routing(const topo::Topology& topo,
                                                   int num_vcs,
                                                   std::uint64_t via_seed);

/// Routing for the policy `config` selects: make_default_routing for an
/// effective kMinimal policy, make_ugal_routing(num_vcs, ugal_via_seed) for
/// effective kUgal (see effective_routing_policy in sim/config.hpp).
std::unique_ptr<RoutingFunction> make_policy_routing(const topo::Topology& topo,
                                                     const SimConfig& config);

}  // namespace shg::sim
