// Routing functions for the cycle-accurate simulator.
//
// Each topology family gets a provably deadlock-free routing function (see
// DESIGN.md Section 4.2). The port numbering convention is shared with
// sim::Network: output/input port i of router u talks to
// topology.graph().neighbors(u)[i].node; endpoint (local) ports follow the
// network ports.
//
//  * XYHammingRouting — mesh / flattened butterfly / sparse Hamming graph /
//    Ruche: route the row dimension first with monotone (never overshoot)
//    skip steps, then the column dimension. Rows/columns that form cycles
//    (torus, folded torus) use shortest-direction routing with a dateline
//    VC-class upgrade instead.
//  * RingRouting — the single-cycle ring topology, dateline scheme.
//  * EcubeRouting — hypercube, ascending bit order.
//  * TableEscapeRouting — arbitrary graphs (SlimNoC): fully adaptive minimal
//    routing on VCs [1, V) with an up*/down* escape path on VC 0
//    (conservative Duato protocol: once on the escape class, stay on it).
#pragma once

#include <memory>
#include <vector>

#include "shg/topo/topology.hpp"

namespace shg::sim {

/// One legal (output port, VC range) choice for a head flit.
struct RouteCandidate {
  int out_port = 0;
  int vc_begin = 0;  ///< allowed VCs: [vc_begin, vc_end)
  int vc_end = 0;
};

/// Interface: given where a head flit is (router `node`, arrived through
/// `in_port` on VC `in_vc`; in_port == -1 for freshly injected packets) and
/// where it wants to go, list the legal next hops. Candidates are ordered by
/// preference (the VC allocator tries them front to back).
class RoutingFunction {
 public:
  virtual ~RoutingFunction() = default;

  /// Precondition: node != dest (ejection is handled by the router).
  virtual std::vector<RouteCandidate> route(int node, int in_port, int in_vc,
                                            int dest) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// Monotone XY routing over row/column "lines" with per-line path or
/// dateline-cycle behaviour; covers mesh, FB, SHG, Ruche, torus and folded
/// torus. Requires num_vcs >= 2 when any line is a cycle.
std::unique_ptr<RoutingFunction> make_xy_hamming_routing(
    const topo::Topology& topo, int num_vcs);

/// Dateline routing on the single cycle of a ring topology.
std::unique_ptr<RoutingFunction> make_ring_routing(const topo::Topology& topo,
                                                   int num_vcs);

/// Dimension-order (ascending bit) routing for the hypercube.
std::unique_ptr<RoutingFunction> make_ecube_routing(const topo::Topology& topo,
                                                    int num_vcs);

/// Adaptive minimal + up*/down* escape VC for arbitrary topologies.
/// Requires num_vcs >= 2.
std::unique_ptr<RoutingFunction> make_table_escape_routing(
    const topo::Topology& topo, int num_vcs);

/// Default deadlock-free routing for a topology family.
std::unique_ptr<RoutingFunction> make_default_routing(
    const topo::Topology& topo, int num_vcs);

}  // namespace shg::sim
