#include "shg/tech/presets.hpp"

namespace shg::tech {

WireLayerStack paper_example_wire_stack() {
  WireLayerStack stack;
  stack.horizontal_pitch_nm = {40.0, 50.0, 60.0};
  stack.vertical_pitch_nm = {45.0, 55.0};
  return stack;
}

TechnologyModel tech_22nm() {
  TechnologyModel tech;
  tech.name = "22nm";
  tech.ge_area_um2 = 0.2;
  tech.wires = paper_example_wire_stack();
  tech.wire_delay_ps_per_mm = 150.0;
  tech.logic_power_w_per_mm2 = 0.30;
  tech.wire_power_w_per_mm2 = 0.20;
  return tech;
}

TechnologyModel tech_22fdx_lowpower() {
  TechnologyModel tech = tech_22nm();
  tech.name = "22fdx-lowpower";
  // Near-threshold operation at ~500 MHz: roughly 3x lower power density
  // (calibrated against MemPool's published 1.55 W, Table III).
  tech.logic_power_w_per_mm2 = 0.090;
  tech.wire_power_w_per_mm2 = 0.050;
  return tech;
}

ArchParams knc_scenario(KncScenario scenario) {
  ArchParams arch;
  arch.tech = tech_22nm();
  // Full AXI5 on a duplex 512-bit link: AW+W+B+AR+R channels in both
  // directions plus strobes, IDs and handshakes — about 4 wires per payload
  // bit. Calibrated so the flattened butterfly exceeds the 40% area budget
  // of Section V-b in every scenario, as in the paper's Figure 6.
  arch.transport = TransportModel{"axi", 5.0, 300.0};
  arch.router_area = RouterAreaModel{};
  arch.router_arch = RouterArchitecture{8, 32};
  arch.frequency_hz = 1.2e9;
  arch.link_bandwidth_bits = 512.0;
  arch.tile_aspect_ratio = 1.0;
  switch (scenario) {
    case KncScenario::kA:
      arch.name = "knc-a (64 tiles, 35 MGE, 1 core)";
      arch.rows = 8;
      arch.cols = 8;
      arch.endpoint_area_ge = 35e6;
      arch.endpoints_per_tile = 1;
      break;
    case KncScenario::kB:
      arch.name = "knc-b (64 tiles, 70 MGE, 2 cores)";
      arch.rows = 8;
      arch.cols = 8;
      arch.endpoint_area_ge = 70e6;
      arch.endpoints_per_tile = 2;
      break;
    case KncScenario::kC:
      arch.name = "knc-c (128 tiles, 35 MGE, 1 core)";
      arch.rows = 8;
      arch.cols = 16;
      arch.endpoint_area_ge = 35e6;
      arch.endpoints_per_tile = 1;
      break;
    case KncScenario::kD:
      arch.name = "knc-d (128 tiles, 70 MGE, 2 cores)";
      arch.rows = 8;
      arch.cols = 16;
      arch.endpoint_area_ge = 70e6;
      arch.endpoints_per_tile = 2;
      break;
  }
  return arch;
}

ArchParams mempool_arch() {
  ArchParams arch;
  arch.name = "mempool (256 cores, 1024 banks)";
  arch.tech = tech_22fdx_lowpower();
  // MemPool's interconnect is lean point-to-point request/response wiring,
  // not a full AXI stack: roughly one wire per payload bit plus handshake.
  arch.transport = TransportModel{"mempool-req-rsp", 1.2, 24.0};
  // Latency-optimized, mostly unbuffered switches: single-flit storage per
  // VC (a skid register), which also throttles per-VC throughput to the
  // credit round trip — the main reason MemPool's fabric saturates well
  // below its raw bisection bandwidth.
  arch.router_area = RouterAreaModel{1.2, 0.3, 800.0};
  arch.router_arch = RouterArchitecture{2, 1};
  arch.rows = 8;
  arch.cols = 8;
  // 4 Snitch-class cores + 16 KiB of SRAM banks + glue per tile.
  arch.endpoint_area_ge = 1.1e6;
  arch.endpoints_per_tile = 4;
  arch.tile_aspect_ratio = 1.0;
  arch.frequency_hz = 0.5e9;
  // 4 x 32-bit data + metadata per tile-to-network link.
  arch.link_bandwidth_bits = 256.0;
  return arch;
}

}  // namespace shg::tech
