// Router area model: f_AR(m, s, B) of Table II.
//
// Mirrors the area structure of input-queued virtual-channel routers
// (Dally & Towles; principle #1 of the paper: "the area of most router
// architectures scales quadratically with the router radix"):
//   * input buffers:  m * V * D * B bits of flip-flop/SRAM storage,
//   * crossbar:       m * s * B crosspoints (the quadratic term),
//   * control:        per-port allocation/arbitration logic.
#pragma once

#include "shg/common/error.hpp"

namespace shg::tech {

/// Microarchitectural parameters shared between the area model and the
/// cycle-accurate simulator ("input-queued routers with 8 virtual channels
/// and 32-flit buffers", Section V-b).
struct RouterArchitecture {
  int num_vcs = 8;
  int buffer_depth_flits = 32;
};

/// Gate-equivalent cost coefficients of a router implementation.
struct RouterAreaModel {
  double ge_per_buffer_bit = 2.0;    ///< storage cell + FIFO overhead
  double ge_per_crosspoint_bit = 0.3;  ///< mux tree, amortized per bit
  double ge_per_port_control = 2000.0;  ///< routing/VC/switch allocation

  /// f_AR(m, s, B): router area in gate equivalents for m manager (input)
  /// ports, s subordinate (output) ports and B bits/cycle of bandwidth.
  double area_ge(int manager_ports, int subordinate_ports, double bw_bits,
                 const RouterArchitecture& arch) const {
    SHG_REQUIRE(manager_ports > 0 && subordinate_ports > 0,
                "router needs at least one port per side");
    SHG_REQUIRE(bw_bits > 0.0, "bandwidth must be positive");
    SHG_REQUIRE(arch.num_vcs > 0 && arch.buffer_depth_flits > 0,
                "router architecture must have positive VCs and buffers");
    const double m = static_cast<double>(manager_ports);
    const double s = static_cast<double>(subordinate_ports);
    const double buffers = m * arch.num_vcs * arch.buffer_depth_flits *
                           bw_bits * ge_per_buffer_bit;
    const double crossbar = m * s * bw_bits * ge_per_crosspoint_bit;
    const double control = (m + s) * ge_per_port_control;
    return buffers + crossbar + control;
  }
};

}  // namespace shg::tech
