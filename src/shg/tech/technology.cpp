#include "shg/tech/technology.hpp"

namespace shg::tech {

namespace {

/// Sum of reciprocal pitches: wires manufacturable per nm of channel extent.
double wires_per_nm(const std::vector<double>& pitches_nm) {
  SHG_REQUIRE(!pitches_nm.empty(),
              "at least one metal layer per direction is required");
  double sum = 0.0;
  for (double pitch : pitches_nm) {
    SHG_REQUIRE(pitch > 0.0, "wire pitch must be positive");
    sum += 1.0 / pitch;
  }
  return sum;
}

}  // namespace

double WireLayerStack::h_wires_to_mm(double wires) const {
  SHG_REQUIRE(wires >= 0.0, "wire count must be non-negative");
  // x / (sum of reciprocal pitches) nm, times 1e-6 to convert nm -> mm.
  return wires / wires_per_nm(horizontal_pitch_nm) * 1e-6;
}

double WireLayerStack::v_wires_to_mm(double wires) const {
  SHG_REQUIRE(wires >= 0.0, "wire count must be non-negative");
  return wires / wires_per_nm(vertical_pitch_nm) * 1e-6;
}

}  // namespace shg::tech
