// Architectural parameters: the complete Table II bundle consumed by the
// NoC model (Fig. 4) and the prediction toolchain (Fig. 3).
#pragma once

#include <string>

#include "shg/tech/router_area.hpp"
#include "shg/tech/technology.hpp"
#include "shg/tech/transport.hpp"

namespace shg::tech {

/// Everything the cost/performance model needs to know about the chip,
/// the NoC, the technology node and the transport protocol (Table II).
struct ArchParams {
  std::string name = "unnamed";

  // -- Parameters describing the chip design ------------------------------
  int rows = 8;   ///< tile grid rows (N_T = rows * cols)
  int cols = 8;   ///< tile grid columns
  double endpoint_area_ge = 35e6;  ///< A_E: combined endpoint area per tile
  double tile_aspect_ratio = 1.0;  ///< R_T: tile height : width
  int endpoints_per_tile = 1;      ///< local router ports to endpoints

  // -- Parameters describing the NoC ---------------------------------------
  double frequency_hz = 1.2e9;        ///< F
  double link_bandwidth_bits = 512.0; ///< B, bits/cycle per link

  // -- Technology node / transport protocol --------------------------------
  TechnologyModel tech;
  TransportModel transport;
  RouterAreaModel router_area;
  RouterArchitecture router_arch;

  int num_tiles() const { return rows * cols; }

  /// Wires of one router-to-router link (f_bw->wires applied to B).
  double wires_per_link() const {
    return transport.bw_to_wires(link_bandwidth_bits);
  }
};

}  // namespace shg::tech
