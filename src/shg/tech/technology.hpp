// Technology node model: the f_GE->mm2, f^H/V_wires->mm, f^L/W_mm2->W and
// f_mm->s functions of Table II.
//
// The wire functions implement the paper's Section IV-B1 recipe verbatim:
// each metal layer contributes the reciprocal of its wire pitch (wires per
// nm); summing reciprocals aggregates multiple physical layers into one
// abstract layer per routing direction, and x wires then need
// x / (sum of reciprocal pitches) nanometers of channel.
#pragma once

#include <string>
#include <vector>

#include "shg/common/error.hpp"

namespace shg::tech {

/// Signal-routing metal layers, split by their predefined routing direction
/// (Section II-A assumes one direction per layer).
struct WireLayerStack {
  std::vector<double> horizontal_pitch_nm;
  std::vector<double> vertical_pitch_nm;

  /// f^H_wires->mm(x): channel height needed for x parallel horizontal wires.
  double h_wires_to_mm(double wires) const;
  /// f^V_wires->mm(x): channel width needed for x parallel vertical wires.
  double v_wires_to_mm(double wires) const;
};

/// A technology node: area, wiring, delay and power-density characteristics.
struct TechnologyModel {
  std::string name;
  double ge_area_um2 = 0.2;        ///< silicon area of one gate equivalent
  WireLayerStack wires;
  double wire_delay_ps_per_mm = 150.0;  ///< buffered-wire signal velocity
  double logic_power_w_per_mm2 = 0.30;  ///< f^L density (logic-dominated)
  double wire_power_w_per_mm2 = 0.20;   ///< f^W density (wire-dominated)

  /// f_GE->mm2(x): silicon area for x gate equivalents of logic.
  double ge_to_mm2(double ge) const {
    SHG_REQUIRE(ge >= 0.0, "gate-equivalent count must be non-negative");
    return ge * ge_area_um2 * 1e-6;
  }

  /// f_mm->s(x): signal propagation time along x mm of buffered wire.
  double mm_to_s(double mm) const {
    SHG_REQUIRE(mm >= 0.0, "wire length must be non-negative");
    return mm * wire_delay_ps_per_mm * 1e-12;
  }

  /// f^L_mm2->W(x): power of x mm^2 of logic-dominated area.
  double logic_mm2_to_w(double mm2) const {
    SHG_REQUIRE(mm2 >= 0.0, "area must be non-negative");
    return mm2 * logic_power_w_per_mm2;
  }

  /// f^W_mm2->W(x): power of x mm^2 of wire-dominated area.
  double wire_mm2_to_w(double mm2) const {
    SHG_REQUIRE(mm2 >= 0.0, "area must be non-negative");
    return mm2 * wire_power_w_per_mm2;
  }
};

}  // namespace shg::tech
