// Named architecture / technology presets used throughout the evaluation.
//
// All constants here are *inputs* of the model (Table II) chosen to be
// representative of the architectures the paper evaluates; the comments on
// each preset record its calibration rationale.
#pragma once

#include "shg/tech/arch_params.hpp"

namespace shg::tech {

/// The worked example of Section IV-B1: 10 metal layers, 5 for signal
/// routing — 3 horizontal (pitches 40/50/60 nm) and 2 vertical (45/55 nm).
WireLayerStack paper_example_wire_stack();

/// 22 nm-class technology node (Knights Corner is implemented in 22 nm,
/// Section V-b): 0.2 um^2 per GE, the paper-example wire stack, 150 ps/mm
/// buffered-wire delay, KNC-class power densities.
TechnologyModel tech_22nm();

/// Low-power 22FDX-style variant for MemPool (runs near-threshold at a
/// much lower frequency, so power densities are far below KNC's).
TechnologyModel tech_22fdx_lowpower();

/// Scenario identifiers of Section V-b.
enum class KncScenario { kA, kB, kC, kD };

/// Knights-Corner-like architecture of Section V-b:
///   a) 64 tiles (8x8), 35 MGE, 1 core/tile
///   b) 64 tiles (8x8), 70 MGE, 2 cores/tile
///   c) 128 tiles (8x16), 35 MGE, 1 core/tile
///   d) 128 tiles (8x16), 70 MGE, 2 cores/tile
/// All: AXI transport, 512 bits/cycle per link, 1.2 GHz, input-queued
/// routers with 8 VCs and 32-flit buffers.
ArchParams knc_scenario(KncScenario scenario);

/// MemPool-like architecture (Section IV-C / Table III): 64 tiles, each
/// with 4 small cores + 16 SRAM banks (about 1.1 MGE), 32-bit-data links at
/// 500 MHz with a lean (non-AXI) transport, shallow buffers, 2 VCs.
ArchParams mempool_arch();

}  // namespace shg::tech
