// On-chip transport protocol model: f_bw->wires of Table II.
//
// The evaluation assumes AXI links (Kurth et al. [29]): a full-duplex link
// of bandwidth B bits/cycle carries read and write data channels of B bits
// each plus address/response/handshake sidebands, so the wire count is
// roughly linear in B with a fixed overhead.
#pragma once

#include <string>

#include "shg/common/error.hpp"

namespace shg::tech {

/// Wire-count model of one router-to-router link.
struct TransportModel {
  std::string name = "axi";
  double wires_per_bit = 2.4;    ///< duplex data + strobes + metadata
  double overhead_wires = 160.0; ///< addresses, handshakes, IDs

  /// f_bw->wires(x): physical wires needed for x bits/cycle of bandwidth.
  double bw_to_wires(double bits_per_cycle) const {
    SHG_REQUIRE(bits_per_cycle > 0.0, "bandwidth must be positive");
    return bits_per_cycle * wires_per_bit + overhead_wires;
  }
};

}  // namespace shg::tech
