// Performance evaluation: zero-load latency and saturation throughput via
// cycle-accurate simulation (the right half of the toolchain in Fig. 3).
#pragma once

#include <vector>

#include "shg/sim/simulator.hpp"

namespace shg::eval {

/// Knobs of the performance evaluation.
struct PerfConfig {
  sim::SimConfig sim;  ///< router microarchitecture + measurement phases

  double zero_load_rate = 0.005;  ///< injection rate for the ZLL probe
  /// A rate is saturated when mean latency exceeds this multiple of the
  /// zero-load latency (BookSim convention) ...
  double latency_threshold_factor = 3.0;
  /// ... or when accepted throughput falls below this fraction of offered.
  double min_accepted_fraction = 0.9;
  int bisection_iterations = 7;
};

/// Zero-load latency and saturation throughput of one configuration.
struct PerfResult {
  double zero_load_latency_cycles = 0.0;
  double zero_load_hops = 0.0;
  double saturation_throughput = 0.0;  ///< flits/cycle/port at saturation
  /// Accepted throughput measured at the saturation rate.
  double accepted_at_saturation = 0.0;
};

/// Measures zero-load latency (low-rate run) and saturation throughput
/// (bisection over the injection rate).
PerfResult evaluate_performance(const topo::Topology& topo,
                                const std::vector<int>& link_latencies,
                                int endpoints_per_tile,
                                const sim::TrafficPattern& pattern,
                                const PerfConfig& config);

/// Single simulation at a fixed rate (helper for sweeps and benches).
/// `shared_table` optionally reuses one precomputed route table across many
/// rates on the same topology (see make_shared_route_table).
sim::SimResult simulate_at_rate(
    const topo::Topology& topo, const std::vector<int>& link_latencies,
    int endpoints_per_tile, const sim::TrafficPattern& pattern,
    const PerfConfig& config, double rate,
    std::shared_ptr<const sim::RouteTable> shared_table = nullptr);

/// Builds the route table the default routing of `topo` would use, for
/// sharing across the simulations of a sweep or bisection. Returns null when
/// the config disables route tables.
std::shared_ptr<const sim::RouteTable> make_shared_route_table(
    const topo::Topology& topo, const PerfConfig& config);

}  // namespace shg::eval
