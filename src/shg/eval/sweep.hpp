// Load-latency sweeps: the classic NoC evaluation curve (average packet
// latency as a function of offered load), plus CSV export for plotting.
#pragma once

#include <string>
#include <vector>

#include "shg/eval/perf.hpp"

namespace shg::eval {

/// One point of a load-latency curve.
struct SweepPoint {
  double offered_rate = 0.0;
  double accepted_rate = 0.0;
  double avg_latency = 0.0;
  double p99_latency = 0.0;
  bool drained = true;
};

/// A labeled curve for one topology/configuration.
struct LoadLatencyCurve {
  std::string label;
  std::vector<SweepPoint> points;
};

/// Simulates the topology at each rate in `rates` (ascending) and collects
/// the curve. Saturated points (undrained) are included and flagged.
LoadLatencyCurve sweep_load_latency(const topo::Topology& topo,
                                    const std::vector<int>& link_latencies,
                                    int endpoints_per_tile,
                                    const sim::TrafficPattern& pattern,
                                    const PerfConfig& config,
                                    const std::vector<double>& rates,
                                    std::string label);

/// Renders one or more curves as CSV (long format:
/// label,offered,accepted,avg_latency,p99_latency,drained).
std::string curves_to_csv(const std::vector<LoadLatencyCurve>& curves);

}  // namespace shg::eval
