#include "shg/eval/toolchain.hpp"

namespace shg::eval {

PerfConfig default_perf_config(const tech::ArchParams& arch) {
  PerfConfig config;
  config.sim.num_vcs = arch.router_arch.num_vcs;
  config.sim.buffer_depth_flits = arch.router_arch.buffer_depth_flits;
  return config;
}

model::CostReport predict_cost(const tech::ArchParams& arch,
                               const topo::Topology& topo) {
  return model::evaluate_cost(arch, topo);
}

Prediction predict(const tech::ArchParams& arch, const topo::Topology& topo,
                   const PerfConfig& config,
                   const sim::TrafficPattern* pattern) {
  Prediction prediction;
  prediction.cost = model::evaluate_cost(arch, topo);
  const auto latencies = prediction.cost.link_latencies();
  std::unique_ptr<sim::TrafficPattern> uniform;
  if (pattern == nullptr) {
    uniform = sim::make_uniform(topo.num_tiles());
    pattern = uniform.get();
  }
  prediction.perf = evaluate_performance(
      topo, latencies, arch.endpoints_per_tile, *pattern, config);
  return prediction;
}

}  // namespace shg::eval
