#include "shg/eval/scenario.hpp"

namespace shg::eval {

Scenario figure6_scenario(tech::KncScenario which) {
  Scenario scenario;
  scenario.arch = tech::knc_scenario(which);
  switch (which) {
    case tech::KncScenario::kA:
      scenario.label = "a";
      scenario.shg = topo::ShgParams{{4}, {2, 5}};
      break;
    case tech::KncScenario::kB:
      scenario.label = "b";
      scenario.shg = topo::ShgParams{{2, 4}, {2, 4}};
      break;
    case tech::KncScenario::kC:
      scenario.label = "c";
      scenario.shg = topo::ShgParams{{3}, {2, 5}};
      break;
    case tech::KncScenario::kD:
      scenario.label = "d";
      scenario.shg = topo::ShgParams{{2, 4}, {2, 4}};
      break;
  }
  return scenario;
}

std::vector<Scenario> figure6_scenarios() {
  return {figure6_scenario(tech::KncScenario::kA),
          figure6_scenario(tech::KncScenario::kB),
          figure6_scenario(tech::KncScenario::kC),
          figure6_scenario(tech::KncScenario::kD)};
}

std::vector<topo::Topology> scenario_topologies(const Scenario& scenario) {
  std::vector<topo::Topology> topologies =
      topo::established_suite(scenario.arch.rows, scenario.arch.cols);
  auto shg = topo::try_make(topo::Kind::kSparseHamming, scenario.arch.rows,
                            scenario.arch.cols, scenario.shg);
  SHG_ASSERT(shg.has_value(), "sparse Hamming graph is always applicable");
  topologies.push_back(std::move(*shg));
  return topologies;
}

}  // namespace shg::eval
