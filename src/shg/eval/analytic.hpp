// Closed-form performance estimates — the "high-level model" baseline the
// paper contrasts its toolchain with (Section VI: fast but less accurate).
//
// Both quantities are exact graph computations, no simulation:
//  * zero-load latency: average over all tile pairs of
//      injection delay + (#routers on path) * router_delay
//      + sum of link latencies along the path + serialization,
//    where the path is the hop-minimal path with the smallest total link
//    latency (what an idealized hop-minimizing router would achieve);
//  * capacity bound: uniform-traffic saturation upper bound
//      2E / (N * avg_hops) flits/node/cycle
//    (every flit occupies avg_hops of the 2E directed link slots).
#pragma once

#include <vector>

#include "shg/topo/topology.hpp"

namespace shg::eval {

struct AnalyticPerf {
  double zero_load_latency_cycles = 0.0;
  double avg_hops = 0.0;  ///< mean hop distance over ordered pairs
  double capacity_bound = 0.0;  ///< flits / cycle / tile, uniform traffic
};

/// Computes the closed-form estimates for a topology with per-link
/// latencies (in cycles), a router pipeline delay, injection delay and
/// packet serialization length.
AnalyticPerf analytic_performance(const topo::Topology& topo,
                                  const std::vector<int>& link_latencies,
                                  int router_delay_cycles,
                                  int injection_delay_cycles,
                                  int packet_size_flits);

}  // namespace shg::eval
