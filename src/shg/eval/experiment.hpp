// Batched experiment engine: the one place that owns simulation fan-out.
//
// An ExperimentSpec declares a cartesian product — topologies x traffic
// specs x injection rates x seeds — and run_experiment() executes it:
// each topology's route table is built once and shared by every run on
// it, all points fan out through parallel_for, multi-seed replicas are
// aggregated (mean/stddev/min/max per metric), and the report renders as
// JSON or CSV. Callers that used to own their own simulate-loops
// (sweep_load_latency, the Figure 6 drivers, the examples) are thin
// wrappers over this engine.
//
// Determinism: every run is an independent Simulator with a private PRNG
// seeded from its (rate, seed) cell, results land in index-addressed
// slots, and aggregation is a serial reduction in seed order — so the
// report is identical under set_max_threads(1) and the default worker
// count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shg/eval/perf.hpp"
#include "shg/eval/scenario.hpp"
#include "shg/sim/traffic_spec.hpp"

namespace shg::customize {
class Session;  // customize/session.hpp: cross-invocation reuse state
}  // namespace shg::customize

namespace shg::eval {

/// One topology under test: the graph plus its physical link latencies.
struct TopologyCase {
  topo::Topology topology;
  /// Cycles per link (cost-model output); empty = 1 cycle everywhere.
  std::vector<int> link_latencies;
  /// Report label; empty = topology.name().
  std::string label;
};

/// One workload under test. Either a TrafficSpec string (the declarative
/// path) or a borrowed pre-built pattern (for wrappers that already hold
/// one; it is then driven by the default Bernoulli process).
struct TrafficCase {
  std::string spec;                              ///< parsed when pattern null
  const sim::TrafficPattern* pattern = nullptr;  ///< not owned
  /// Report label; empty = canonical spec (or pattern->name()).
  std::string label;
};

/// The declarative experiment: topologies x traffic x rates x seeds.
struct ExperimentSpec {
  std::string name = "experiment";
  std::vector<TopologyCase> topologies;
  std::vector<TrafficCase> traffic;
  std::vector<double> rates;               ///< flits/cycle/port, in (0, 1]
  std::vector<std::uint64_t> seeds;        ///< empty = {config.sim.seed}
  int endpoints_per_tile = 1;
  PerfConfig config;                       ///< sim knobs; rate/seed overridden
  /// Persistent DSE session (default off). Two tiers engage:
  ///  * route tables are looked up in / stored into the artifact tier,
  ///    keyed by (topology edge list, family kind, VC count), so repeated
  ///    experiments over overlapping topology sets build each table once
  ///    per session instead of once per run_experiment call;
  ///  * completed cells are looked up in / stored into the
  ///    simulation-result tier, keyed by fingerprint_sim_cell over
  ///    (topology + latencies + endpoints, canonical traffic spec, full
  ///    per-cell SimConfig), so an overlapping re-invocation — added
  ///    seeds, widened rate grids, a refined sweep, or a fully warm
  ///    re-run — only simulates the cells it has never seen. Workloads
  ///    passed as borrowed TrafficCase::pattern pointers have no canonical
  ///    string and always simulate.
  /// Reports are byte-identical with or without a session: the cached
  /// table is the same deduplicated CSR, and a result-tier hit returns the
  /// exact SimResult bits the cold simulation produced (the warm-campaign
  /// bench gate and tests/experiment_test.cpp enforce it). Not owned; must
  /// outlive the call; accessed on the calling thread only.
  customize::Session* session = nullptr;

  void validate() const;
};

/// mean/stddev/min/max of one metric over the seed replicas of a point.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One (topology, traffic, rate) cell with its seed replicas aggregated.
struct ExperimentPoint {
  std::string topology;
  std::string traffic;
  double offered_rate = 0.0;
  int replicas = 0;
  bool all_drained = true;
  Aggregate accepted_rate;
  Aggregate avg_latency;
  Aggregate p50_latency;
  Aggregate p95_latency;
  Aggregate p99_latency;
  Aggregate max_latency;
  Aggregate avg_hops;
  Aggregate fairness;
  /// Raw per-seed results in seed order, for callers that need more than
  /// the aggregates (tests, plots of replica spread).
  std::vector<sim::SimResult> runs;
};

/// Footprint of one topology's shared route table — every cell of that
/// topology reuses the same deduplicated CSR, so the dedupe win scales
/// with the number of cells sharing it.
struct TableFootprint {
  std::string topology;
  std::size_t rows = 0;
  std::size_t unique_rows = 0;       ///< after in_vc-class row dedup
  std::size_t bytes = 0;             ///< deduplicated CSR footprint
  std::size_t bytes_undeduped = 0;   ///< one-range-per-row layout it replaced
};

/// The rendered experiment: points in topology-major, then traffic, then
/// rate order (seeds folded into each point).
struct ExperimentReport {
  std::string name;
  std::vector<ExperimentPoint> points;
  /// One entry per topology with a shared route table (empty when
  /// SimConfig::use_route_table is off), in spec order.
  std::vector<TableFootprint> route_tables;
  /// Result-tier accounting of this invocation (all zero without a
  /// session). Deliberately NOT rendered into the JSON/CSV reports: the
  /// rendered bytes must be identical between a cold and a warm run, and
  /// these counters are the one thing that legitimately differs. Drivers
  /// print them separately.
  std::size_t sim_cells = 0;       ///< cells in the (t, w, r, s) grid
  std::size_t sim_cache_hits = 0;  ///< served from the session result tier
  std::size_t sim_simulated = 0;   ///< actually simulated by this call
};

/// Executes the spec: shared route table per topology, one parallel_for
/// over every (topology, traffic, rate, seed) cell — minus the cells the
/// session result tier already holds — and serial aggregation.
ExperimentReport run_experiment(const ExperimentSpec& spec);

/// Result of one worker's shard of a campaign (see run_experiment_shard).
struct ShardRunStats {
  std::size_t cells_total = 0;  ///< full campaign grid size
  std::size_t shard_cells = 0;  ///< cells owned by this shard
  std::size_t cache_hits = 0;   ///< shard cells already in the result tier
  std::size_t simulated = 0;    ///< shard cells simulated by this call
};

/// One worker of a sharded campaign: simulates only the cells whose flat
/// grid index i (seed-fastest, topology-slowest — the run_experiment
/// order) satisfies i % shard_count == shard_index, filling the REQUIRED
/// `spec.session`'s result tier and producing no report. The partition is
/// a pure function of (spec, shard_index, shard_count), so a coordinator
/// can hand out `--shard i/n` assignments without further communication.
/// Workers persist their tier via SessionOptions::sim_cache_path (or
/// Session::sim_cache().save_file); a merge step loads every shard file
/// into one session and calls run_experiment, which then simulates
/// nothing and emits a report byte-identical to a single-process run —
/// cells a lost or corrupt shard failed to deliver are simulated by the
/// merge itself, so the merged report is correct either way. Workloads
/// borrowed as TrafficCase::pattern have no cache key; shard workers skip
/// them (the merge run simulates those cells itself).
ShardRunStats run_experiment_shard(const ExperimentSpec& spec,
                                   int shard_index, int shard_count);

/// Long-format CSV, one row per point; labels are csv_field-escaped.
std::string experiment_to_csv(const ExperimentReport& report);

/// Machine-readable JSON (schema "shg.experiment.v1").
std::string experiment_to_json(const ExperimentReport& report);

/// The Figure 6 evaluation of one Section V-b scenario as an
/// ExperimentSpec: every applicable topology (with its cost-model link
/// latencies) under uniform Bernoulli traffic at the given rates. Extra
/// traffic specs / seeds extend the paper's single-workload setup.
ExperimentSpec figure6_experiment(
    const Scenario& scenario, std::vector<double> rates,
    std::vector<std::string> traffic = {"uniform"},
    std::vector<std::uint64_t> seeds = {});

}  // namespace shg::eval
