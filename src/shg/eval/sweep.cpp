#include "shg/eval/sweep.hpp"

#include <sstream>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"

namespace shg::eval {

LoadLatencyCurve sweep_load_latency(const topo::Topology& topo,
                                    const std::vector<int>& link_latencies,
                                    int endpoints_per_tile,
                                    const sim::TrafficPattern& pattern,
                                    const PerfConfig& config,
                                    const std::vector<double>& rates,
                                    std::string label) {
  SHG_REQUIRE(!rates.empty(), "need at least one rate");
  for (double rate : rates) {
    SHG_REQUIRE(rate > 0.0 && rate <= 1.0, "rates must be in (0, 1]");
  }
  LoadLatencyCurve curve;
  curve.label = std::move(label);
  // Each sweep point is an independent simulation: its Simulator owns a
  // private PRNG seeded from config.sim.seed, so the per-rate results (and
  // therefore the curve) are identical whether points run serially or
  // concurrently. Results land in rate-indexed slots to keep the order.
  curve.points.resize(rates.size());
  const auto table = make_shared_route_table(topo, config);
  parallel_for(rates.size(), [&](std::size_t i) {
    const sim::SimResult result =
        simulate_at_rate(topo, link_latencies, endpoints_per_tile, pattern,
                         config, rates[i], table);
    curve.points[i] = SweepPoint{result.offered_rate, result.accepted_rate,
                                 result.avg_packet_latency,
                                 result.p99_packet_latency, result.drained};
  });
  return curve;
}

std::string curves_to_csv(const std::vector<LoadLatencyCurve>& curves) {
  std::ostringstream os;
  os << "label,offered,accepted,avg_latency,p99_latency,drained\n";
  for (const auto& curve : curves) {
    for (const auto& point : curve.points) {
      os << curve.label << ',' << fmt_double(point.offered_rate, 4) << ','
         << fmt_double(point.accepted_rate, 4) << ','
         << fmt_double(point.avg_latency, 2) << ','
         << fmt_double(point.p99_latency, 2) << ','
         << (point.drained ? 1 : 0) << '\n';
    }
  }
  return os.str();
}

}  // namespace shg::eval
