#include "shg/eval/sweep.hpp"

#include <sstream>

#include "shg/common/strings.hpp"
#include "shg/eval/experiment.hpp"

namespace shg::eval {

LoadLatencyCurve sweep_load_latency(const topo::Topology& topo,
                                    const std::vector<int>& link_latencies,
                                    int endpoints_per_tile,
                                    const sim::TrafficPattern& pattern,
                                    const PerfConfig& config,
                                    const std::vector<double>& rates,
                                    std::string label) {
  // Thin wrapper over the experiment engine: one topology, one borrowed
  // pattern (driven by the default Bernoulli process), one seed. With a
  // single replica every aggregate mean IS the replica's value, so the
  // curve is bit-identical to the engine-free implementation this
  // replaced (same shared route table, same per-point SimConfig).
  ExperimentSpec spec;
  spec.name = label;
  spec.topologies.push_back(TopologyCase{topo, link_latencies, label});
  spec.traffic.push_back(TrafficCase{"", &pattern, pattern.name()});
  spec.rates = rates;
  spec.endpoints_per_tile = endpoints_per_tile;
  spec.config = config;
  const ExperimentReport report = run_experiment(spec);

  LoadLatencyCurve curve;
  curve.label = std::move(label);
  curve.points.reserve(report.points.size());
  for (const ExperimentPoint& point : report.points) {
    curve.points.push_back(SweepPoint{
        point.runs.front().offered_rate, point.accepted_rate.mean,
        point.avg_latency.mean, point.p99_latency.mean, point.all_drained});
  }
  return curve;
}

std::string curves_to_csv(const std::vector<LoadLatencyCurve>& curves) {
  std::ostringstream os;
  os << "label,offered,accepted,avg_latency,p99_latency,drained\n";
  for (const auto& curve : curves) {
    for (const auto& point : curve.points) {
      os << csv_field(curve.label) << ',' << fmt_double(point.offered_rate, 4)
         << ',' << fmt_double(point.accepted_rate, 4) << ','
         << fmt_double(point.avg_latency, 2) << ','
         << fmt_double(point.p99_latency, 2) << ','
         << (point.drained ? 1 : 0) << '\n';
    }
  }
  return os.str();
}

}  // namespace shg::eval
