#include "shg/eval/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "shg/common/parallel.hpp"
#include "shg/common/strings.hpp"
#include "shg/customize/session.hpp"
#include "shg/eval/toolchain.hpp"
#include "shg/sim/trace.hpp"

namespace shg::eval {

namespace {

/// Artifact-tier key of one topology's shared route table. The routing
/// function is a pure function of (family kind, edge set, num_vcs,
/// effective policy, via seed) — `make_policy_routing` switches on
/// `topo.kind()` and the config's routing policy, so both MUST be part of
/// this key even though the screening fingerprints deliberately exclude
/// the kind (screening metrics depend on edges alone; the routing function
/// does not). The EFFECTIVE policy is keyed, not the raw field: an ugal
/// config under the always-minimal bias sentinel builds the minimal table
/// and must share its cache line. The via seed only matters under ugal, so
/// it is zeroed out of minimal keys for the same reason. The domain tag
/// keeps route-table keys disjoint from every other artifact kind by
/// construction; v2 adds the policy axis.
customize::Fingerprint route_table_key(const topo::Topology& topo,
                                       const sim::SimConfig& config) {
  const sim::RoutingPolicy policy = sim::effective_routing_policy(config);
  const bool ugal = policy == sim::RoutingPolicy::kUgal;
  customize::FingerprintBuilder b;
  b.tag("shg.artifact.route_table.v2");
  b.fp(customize::fingerprint_topology(topo));
  b.i64(static_cast<long long>(topo.kind()));
  b.i64(config.num_vcs);
  b.i64(static_cast<long long>(policy));
  b.u64(ugal ? config.ugal_via_seed : 0);
  return b.done();
}

Aggregate aggregate(const std::vector<sim::SimResult>& runs,
                    double (*metric)(const sim::SimResult&)) {
  Aggregate agg;
  agg.min = metric(runs.front());
  agg.max = agg.min;
  double total = 0.0;
  for (const sim::SimResult& run : runs) {
    const double value = metric(run);
    total += value;
    agg.min = std::min(agg.min, value);
    agg.max = std::max(agg.max, value);
  }
  agg.mean = total / static_cast<double>(runs.size());
  double sq = 0.0;
  for (const sim::SimResult& run : runs) {
    const double d = metric(run) - agg.mean;
    sq += d * d;
  }
  agg.stddev = std::sqrt(sq / static_cast<double>(runs.size()));
  return agg;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

void append_aggregate_json(std::ostringstream& os, const char* key,
                           const Aggregate& agg, bool first) {
  if (!first) os << ", ";
  os << '"' << key << "\": {\"mean\": " << agg.mean
     << ", \"stddev\": " << agg.stddev << ", \"min\": " << agg.min
     << ", \"max\": " << agg.max << '}';
}

struct MetricColumn {
  const char* name;
  double (*metric)(const sim::SimResult&);
  Aggregate ExperimentPoint::* slot;
};

const MetricColumn kMetrics[] = {
    {"accepted_rate", [](const sim::SimResult& r) { return r.accepted_rate; },
     &ExperimentPoint::accepted_rate},
    {"avg_latency",
     [](const sim::SimResult& r) { return r.avg_packet_latency; },
     &ExperimentPoint::avg_latency},
    {"p50_latency",
     [](const sim::SimResult& r) { return r.p50_packet_latency; },
     &ExperimentPoint::p50_latency},
    {"p95_latency",
     [](const sim::SimResult& r) { return r.p95_packet_latency; },
     &ExperimentPoint::p95_latency},
    {"p99_latency",
     [](const sim::SimResult& r) { return r.p99_packet_latency; },
     &ExperimentPoint::p99_latency},
    {"max_latency",
     [](const sim::SimResult& r) { return r.max_packet_latency; },
     &ExperimentPoint::max_latency},
    {"avg_hops", [](const sim::SimResult& r) { return r.avg_hops; },
     &ExperimentPoint::avg_hops},
    {"fairness", [](const sim::SimResult& r) { return r.fairness; },
     &ExperimentPoint::fairness},
};

}  // namespace

void ExperimentSpec::validate() const {
  SHG_REQUIRE(!topologies.empty(), "experiment needs at least one topology");
  SHG_REQUIRE(!traffic.empty(), "experiment needs at least one workload");
  SHG_REQUIRE(!rates.empty(), "experiment needs at least one rate");
  for (double rate : rates) {
    SHG_REQUIRE(rate > 0.0 && rate <= 1.0, "rates must be in (0, 1]");
  }
  SHG_REQUIRE(endpoints_per_tile >= 1, "need at least one endpoint port");
  for (const TopologyCase& tc : topologies) {
    SHG_REQUIRE(tc.link_latencies.empty() ||
                    tc.link_latencies.size() ==
                        static_cast<std::size_t>(
                            tc.topology.graph().num_edges()),
                "link latencies must be empty or one per edge");
    // Concentrated topologies define their endpoint count themselves.
    SHG_REQUIRE(tc.topology.concentration() == 1 || endpoints_per_tile == 1,
                "concentrated topologies require endpoints_per_tile = 1");
  }
  for (const TrafficCase& wc : traffic) {
    if (wc.pattern == nullptr) {
      sim::TrafficSpec::parse(wc.spec);  // throws on malformed specs
    }
  }
}

namespace {

/// Shared prep of one campaign: everything run_experiment and
/// run_experiment_shard both need before any cell can simulate — resolved
/// seeds, materialized link latencies, shared route tables (artifact-tier
/// reuse when a session is attached), per-(topology, traffic) patterns,
/// and — with a session — the result-tier key of every cacheable cell.
/// Tables are built for every topology even on a fully warm run: the
/// report's route-table footprint section must be byte-identical between
/// cold and warm invocations, and the artifact tier makes the warm build
/// a lookup in-process.
struct CellEngine {
  const ExperimentSpec& spec;
  std::vector<std::uint64_t> seeds;
  std::size_t num_topos;
  std::size_t num_traffic;
  std::size_t num_rates;
  std::size_t num_seeds;
  std::vector<std::vector<int>> latencies;
  std::vector<std::shared_ptr<const sim::RouteTable>> tables;
  std::vector<sim::TrafficSpec> parsed;
  std::vector<std::unique_ptr<sim::TrafficPattern>> owned_patterns;
  std::vector<const sim::TrafficPattern*> patterns;
  /// cell_keys[i] is valid iff a session is attached and cacheable(i);
  /// borrowed patterns have no canonical string to key.
  std::vector<customize::Fingerprint> cell_keys;

  explicit CellEngine(const ExperimentSpec& experiment_spec)
      : spec(experiment_spec) {
    spec.validate();
    seeds = spec.seeds.empty()
                ? std::vector<std::uint64_t>{spec.config.sim.seed}
                : spec.seeds;
    num_topos = spec.topologies.size();
    num_traffic = spec.traffic.size();
    num_rates = spec.rates.size();
    num_seeds = seeds.size();

    // Per-topology setup: unit link latencies where unspecified, and one
    // shared route table per topology — built in parallel, each used
    // read-only by every run on that topology afterwards.
    latencies.resize(num_topos);
    tables.resize(num_topos);
    for (std::size_t t = 0; t < num_topos; ++t) {
      const TopologyCase& tc = spec.topologies[t];
      latencies[t] = tc.link_latencies.empty()
                         ? std::vector<int>(
                               static_cast<std::size_t>(
                                   tc.topology.graph().num_edges()),
                               1)
                         : tc.link_latencies;
    }
    // With a session attached, tables hit its artifact tier across
    // run_experiment calls; only the misses are built (in parallel, as
    // before) and stored back. Session traffic stays on this thread.
    std::vector<std::size_t> to_build;
    std::vector<customize::Fingerprint> table_keys(num_topos);
    const bool use_session_tables =
        spec.session != nullptr && spec.config.sim.use_route_table;
    for (std::size_t t = 0; t < num_topos; ++t) {
      if (use_session_tables) {
        table_keys[t] =
            route_table_key(spec.topologies[t].topology, spec.config.sim);
        if (const auto artifact =
                spec.session->find_artifact(table_keys[t])) {
          tables[t] =
              std::static_pointer_cast<const sim::RouteTable>(artifact);
          continue;
        }
      }
      to_build.push_back(t);
    }
    parallel_for(to_build.size(), [&](std::size_t i) {
      const std::size_t t = to_build[i];
      tables[t] =
          make_shared_route_table(spec.topologies[t].topology, spec.config);
    });
    if (use_session_tables) {
      for (std::size_t t : to_build) {
        if (tables[t] != nullptr) {
          spec.session->store_artifact(table_keys[t], tables[t]);
        }
      }
    }

    // Per (topology, traffic) patterns. Spec-built patterns are owned
    // here; borrowed patterns are used as-is. Patterns are stateless (all
    // state lives in the per-run PRNG), so sharing one across runs is
    // safe.
    parsed.resize(num_traffic);
    for (std::size_t w = 0; w < num_traffic; ++w) {
      if (spec.traffic[w].pattern == nullptr) {
        parsed[w] = sim::TrafficSpec::parse(spec.traffic[w].spec);
        // Trace files are loaded (and fully validated) once per traffic
        // case; every cell on every topology shares the in-memory trace.
        parsed[w].resolve_trace();
      }
    }
    owned_patterns.resize(num_topos * num_traffic);
    patterns.resize(num_topos * num_traffic);
    for (std::size_t t = 0; t < num_topos; ++t) {
      for (std::size_t w = 0; w < num_traffic; ++w) {
        const std::size_t i = t * num_traffic + w;
        if (spec.traffic[w].pattern != nullptr) {
          patterns[i] = spec.traffic[w].pattern;
        } else if (parsed[w].is_trace()) {
          // Trace replay workloads carry a mutable cursor, so unlike the
          // stateless synthetic patterns they cannot be shared across
          // concurrently simulating cells; simulate() builds a private
          // pair per cell instead.
          patterns[i] = nullptr;
        } else {
          owned_patterns[i] = parsed[w].make_pattern(
              spec.topologies[t].topology.rows(),
              spec.topologies[t].topology.cols(),
              spec.topologies[t].topology.concentration());
          patterns[i] = owned_patterns[i].get();
        }
      }
    }

    if (spec.session != nullptr) {
      // The result-tier keys: one per cacheable cell, composed from a
      // per-topology prefix so the topology is hashed once, not per cell.
      std::vector<customize::Fingerprint> topo_fps(num_topos);
      for (std::size_t t = 0; t < num_topos; ++t) {
        topo_fps[t] = customize::fingerprint_sim_topology(
            spec.topologies[t].topology, latencies[t],
            spec.endpoints_per_tile);
      }
      cell_keys.resize(total());
      for (std::size_t i = 0; i < total(); ++i) {
        std::size_t t, w, r, s;
        decompose(i, t, w, r, s);
        if (!cacheable(w)) continue;
        cell_keys[i] = customize::fingerprint_sim_cell(
            topo_fps[t], parsed[w].canonical(), cell_config(r, s),
            parsed[w].trace_content_hash());
      }
    }
  }

  std::size_t total() const {
    return num_topos * num_traffic * num_rates * num_seeds;
  }

  /// Inverts the flat cell index (seed fastest, topology slowest).
  void decompose(std::size_t i, std::size_t& t, std::size_t& w,
                 std::size_t& r, std::size_t& s) const {
    s = i % num_seeds;
    r = (i / num_seeds) % num_rates;
    w = (i / (num_seeds * num_rates)) % num_traffic;
    t = i / (num_seeds * num_rates * num_traffic);
  }

  bool cacheable(std::size_t w) const {
    return spec.traffic[w].pattern == nullptr;
  }

  sim::SimConfig cell_config(std::size_t r, std::size_t s) const {
    sim::SimConfig config = spec.config.sim;
    config.injection_rate = spec.rates[r];
    config.seed = seeds[s];
    return config;
  }

  /// One independent simulation; safe to call from worker threads (all
  /// shared state is read-only, all mutable state is cell-private).
  sim::SimResult simulate(std::size_t i) const {
    std::size_t t, w, r, s;
    decompose(i, t, w, r, s);
    const sim::SimConfig config = cell_config(r, s);
    if (spec.traffic[w].pattern == nullptr && parsed[w].is_trace()) {
      // A private replay pair per cell: the schedule build is cheap next
      // to the simulation, and the shared_ptr'd trace bytes are not
      // copied. The workload outlives run() in this frame.
      const topo::Topology& topology = spec.topologies[t].topology;
      sim::TraceWorkload workload = parsed[w].make_trace_workload(
          topology.rows(), topology.cols(), topology.concentration(),
          spec.endpoints_per_tile, config.packet_size_flits);
      sim::Simulator simulator(topology, latencies[t], config,
                               *workload.pattern, spec.endpoints_per_tile,
                               nullptr, tables[t], std::move(workload.process));
      return simulator.run();
    }
    std::unique_ptr<sim::InjectionProcess> process;
    if (spec.traffic[w].pattern == nullptr) {
      // With concentration, the concentration factor is the per-tile
      // endpoint count (the Simulator enforces endpoints_per_tile == 1).
      const int conc = spec.topologies[t].topology.concentration();
      const int ports_per_tile = conc > 1 ? conc : spec.endpoints_per_tile;
      process = parsed[w].make_process(
          config.injection_rate /
              static_cast<double>(config.packet_size_flits),
          spec.topologies[t].topology.num_tiles() * ports_per_tile);
    }
    sim::Simulator simulator(spec.topologies[t].topology, latencies[t],
                             config, *patterns[t * num_traffic + w],
                             spec.endpoints_per_tile, nullptr, tables[t],
                             std::move(process));
    return simulator.run();
  }
};

}  // namespace

ExperimentReport run_experiment(const ExperimentSpec& spec) {
  const CellEngine engine(spec);
  const std::size_t num_topos = engine.num_topos;
  const std::size_t num_traffic = engine.num_traffic;
  const std::size_t num_rates = engine.num_rates;
  const std::size_t num_seeds = engine.num_seeds;
  const std::vector<std::shared_ptr<const sim::RouteTable>>& tables =
      engine.tables;
  const std::vector<sim::TrafficSpec>& parsed = engine.parsed;

  // Result-tier lookups happen serially on this thread (the session is
  // single-threaded by design); only the misses fan out below. Hits
  // restore the exact SimResult bits the cold simulation produced, so the
  // aggregated report is byte-identical either way.
  const std::size_t total = engine.total();
  std::vector<sim::SimResult> runs(total);
  std::vector<std::size_t> to_sim;
  std::size_t hits = 0;
  if (spec.session != nullptr) {
    to_sim.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      std::size_t t, w, r, s;
      engine.decompose(i, t, w, r, s);
      if (engine.cacheable(w)) {
        if (const auto hit = spec.session->lookup_sim(engine.cell_keys[i])) {
          runs[i] = *hit;
          ++hits;
          continue;
        }
      }
      to_sim.push_back(i);
    }
  } else {
    to_sim.resize(total);
    for (std::size_t i = 0; i < total; ++i) to_sim[i] = i;
  }

  // The flat fan-out: every remaining (topology, traffic, rate, seed)
  // cell is an independent simulation writing into its own slot.
  parallel_for(to_sim.size(), [&](std::size_t k) {
    runs[to_sim[k]] = engine.simulate(to_sim[k]);
  });
  if (spec.session != nullptr) {
    // Store in ascending cell order so the result tier's LRU order — and
    // therefore any later eviction — is deterministic.
    for (std::size_t i : to_sim) {
      std::size_t t, w, r, s;
      engine.decompose(i, t, w, r, s);
      if (engine.cacheable(w)) {
        spec.session->store_sim(engine.cell_keys[i], runs[i]);
      }
    }
  }

  // Serial aggregation in index order keeps the report deterministic.
  ExperimentReport report;
  report.name = spec.name;
  report.sim_cells = total;
  report.sim_cache_hits = hits;
  report.sim_simulated = to_sim.size();
  report.points.reserve(num_topos * num_traffic * num_rates);
  for (std::size_t t = 0; t < num_topos; ++t) {
    const TopologyCase& tc = spec.topologies[t];
    const std::string topo_label =
        tc.label.empty() ? tc.topology.name() : tc.label;
    if (tables[t] != nullptr) {
      report.route_tables.push_back(
          TableFootprint{topo_label, tables[t]->num_rows(),
                         tables[t]->num_unique_rows(),
                         tables[t]->memory_bytes(),
                         tables[t]->undeduped_memory_bytes()});
    }
    for (std::size_t w = 0; w < num_traffic; ++w) {
      const TrafficCase& wc = spec.traffic[w];
      std::string traffic_label = wc.label;
      if (traffic_label.empty()) {
        traffic_label = wc.pattern != nullptr ? wc.pattern->name()
                                              : parsed[w].canonical();
      }
      for (std::size_t r = 0; r < num_rates; ++r) {
        ExperimentPoint point;
        point.topology = topo_label;
        point.traffic = traffic_label;
        point.offered_rate = spec.rates[r];
        point.replicas = static_cast<int>(num_seeds);
        point.runs.reserve(num_seeds);
        for (std::size_t s = 0; s < num_seeds; ++s) {
          const std::size_t i =
              ((t * num_traffic + w) * num_rates + r) * num_seeds + s;
          point.runs.push_back(runs[i]);
          point.all_drained = point.all_drained && runs[i].drained;
        }
        for (const MetricColumn& column : kMetrics) {
          point.*(column.slot) = aggregate(point.runs, column.metric);
        }
        report.points.push_back(std::move(point));
      }
    }
  }
  return report;
}

ShardRunStats run_experiment_shard(const ExperimentSpec& spec,
                                   int shard_index, int shard_count) {
  SHG_REQUIRE(spec.session != nullptr,
              "sharded campaigns need a session: its result tier is the "
              "worker's only output");
  SHG_REQUIRE(shard_count >= 1 && shard_index >= 0 &&
                  shard_index < shard_count,
              "shard index must be in [0, shard_count)");
  const CellEngine engine(spec);

  ShardRunStats stats;
  stats.cells_total = engine.total();
  std::vector<std::size_t> to_sim;
  for (std::size_t i = static_cast<std::size_t>(shard_index);
       i < engine.total(); i += static_cast<std::size_t>(shard_count)) {
    ++stats.shard_cells;
    std::size_t t, w, r, s;
    engine.decompose(i, t, w, r, s);
    // Borrowed patterns have no cache key, so a worker cannot hand their
    // results to the merge step; the merge run simulates them itself.
    if (!engine.cacheable(w)) continue;
    if (spec.session->lookup_sim(engine.cell_keys[i]).has_value()) {
      ++stats.cache_hits;
      continue;
    }
    to_sim.push_back(i);
  }

  std::vector<sim::SimResult> results(to_sim.size());
  parallel_for(to_sim.size(), [&](std::size_t k) {
    results[k] = engine.simulate(to_sim[k]);
  });
  // Ascending cell order keeps the tier's LRU (and shard-file) order a
  // pure function of the spec and shard assignment.
  for (std::size_t k = 0; k < to_sim.size(); ++k) {
    spec.session->store_sim(engine.cell_keys[to_sim[k]], results[k]);
  }
  stats.simulated = to_sim.size();
  return stats;
}

std::string experiment_to_csv(const ExperimentReport& report) {
  std::ostringstream os;
  os << "topology,traffic,offered,replicas,all_drained";
  for (const MetricColumn& column : kMetrics) {
    os << ',' << column.name << "_mean," << column.name << "_stddev,"
       << column.name << "_min," << column.name << "_max";
  }
  os << '\n';
  for (const ExperimentPoint& point : report.points) {
    os << csv_field(point.topology) << ',' << csv_field(point.traffic) << ','
       << fmt_double(point.offered_rate, 4) << ',' << point.replicas << ','
       << (point.all_drained ? 1 : 0);
    for (const MetricColumn& column : kMetrics) {
      const Aggregate& agg = point.*(column.slot);
      os << ',' << fmt_double(agg.mean, 4) << ',' << fmt_double(agg.stddev, 4)
         << ',' << fmt_double(agg.min, 4) << ',' << fmt_double(agg.max, 4);
    }
    os << '\n';
  }
  return os.str();
}

std::string experiment_to_json(const ExperimentReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"shg.experiment.v1\",\n  \"name\": \""
     << json_escape(report.name) << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const ExperimentPoint& point = report.points[i];
    os << "    {\"topology\": \"" << json_escape(point.topology)
       << "\", \"traffic\": \"" << json_escape(point.traffic)
       << "\", \"offered\": " << point.offered_rate
       << ", \"replicas\": " << point.replicas << ", \"all_drained\": "
       << (point.all_drained ? "true" : "false") << ", \"metrics\": {";
    bool first = true;
    for (const MetricColumn& column : kMetrics) {
      append_aggregate_json(os, column.name, point.*(column.slot), first);
      first = false;
    }
    os << "}}" << (i + 1 < report.points.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"route_tables\": [\n";
  for (std::size_t i = 0; i < report.route_tables.size(); ++i) {
    const TableFootprint& table = report.route_tables[i];
    os << "    {\"topology\": \"" << json_escape(table.topology)
       << "\", \"rows\": " << table.rows
       << ", \"unique_rows\": " << table.unique_rows
       << ", \"bytes\": " << table.bytes
       << ", \"bytes_undeduped\": " << table.bytes_undeduped << "}"
       << (i + 1 < report.route_tables.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

ExperimentSpec figure6_experiment(const Scenario& scenario,
                                  std::vector<double> rates,
                                  std::vector<std::string> traffic,
                                  std::vector<std::uint64_t> seeds) {
  ExperimentSpec spec;
  spec.name = "figure6-" + scenario.label;
  spec.config = default_perf_config(scenario.arch);
  spec.endpoints_per_tile = scenario.arch.endpoints_per_tile;
  spec.rates = std::move(rates);
  spec.seeds = std::move(seeds);
  for (topo::Topology& topology : scenario_topologies(scenario)) {
    std::vector<int> link_latencies =
        predict_cost(scenario.arch, topology).link_latencies();
    spec.topologies.push_back(
        TopologyCase{std::move(topology), std::move(link_latencies), ""});
  }
  for (std::string& workload : traffic) {
    spec.traffic.push_back(TrafficCase{std::move(workload), nullptr, ""});
  }
  return spec;
}

}  // namespace shg::eval
