#include "shg/eval/perf.hpp"

namespace shg::eval {

sim::SimResult simulate_at_rate(
    const topo::Topology& topo, const std::vector<int>& link_latencies,
    int endpoints_per_tile, const sim::TrafficPattern& pattern,
    const PerfConfig& config, double rate,
    std::shared_ptr<const sim::RouteTable> shared_table) {
  sim::SimConfig sim_config = config.sim;
  sim_config.injection_rate = rate;
  sim::Simulator simulator(topo, link_latencies, sim_config, pattern,
                           endpoints_per_tile, nullptr,
                           std::move(shared_table));
  return simulator.run();
}

std::shared_ptr<const sim::RouteTable> make_shared_route_table(
    const topo::Topology& topo, const PerfConfig& config) {
  if (!config.sim.use_route_table) return nullptr;
  // Policy-aware: an ugal config gets a table with the UGAL candidate rows
  // (and the ugal_info sidecar the simulator requires); minimal configs get
  // the family default, exactly as before.
  const auto routing = sim::make_policy_routing(topo, config.sim);
  return std::make_shared<const sim::RouteTable>(topo, *routing,
                                                 config.sim.num_vcs);
}

namespace {

bool is_saturated(const sim::SimResult& result, double zero_load_latency,
                  const PerfConfig& config) {
  if (!result.drained) return true;
  if (result.measured_packets == 0) return true;
  if (result.avg_packet_latency >
      config.latency_threshold_factor * zero_load_latency) {
    return true;
  }
  return result.accepted_rate <
         config.min_accepted_fraction * result.offered_rate;
}

}  // namespace

PerfResult evaluate_performance(const topo::Topology& topo,
                                const std::vector<int>& link_latencies,
                                int endpoints_per_tile,
                                const sim::TrafficPattern& pattern,
                                const PerfConfig& config) {
  PerfResult result;

  // One route table serves every probe of this evaluation (the topology,
  // routing and VC count never change across rates).
  const auto table = make_shared_route_table(topo, config);

  // Zero-load latency: a rate low enough that queueing is negligible.
  const sim::SimResult zero = simulate_at_rate(
      topo, link_latencies, endpoints_per_tile, pattern, config,
      config.zero_load_rate, table);
  SHG_REQUIRE(zero.drained && zero.measured_packets > 0,
              "zero-load run must drain; topology or routing is broken");
  result.zero_load_latency_cycles = zero.avg_packet_latency;
  result.zero_load_hops = zero.avg_hops;

  // Saturation: bisection on the injection rate. The zero-load probe is
  // un-saturated by construction; rate 1.0 is the upper bound.
  double lo = config.zero_load_rate;
  double hi = 1.0;
  sim::SimResult at_lo = zero;
  const sim::SimResult full = simulate_at_rate(
      topo, link_latencies, endpoints_per_tile, pattern, config, 1.0, table);
  if (!is_saturated(full, result.zero_load_latency_cycles, config)) {
    result.saturation_throughput = 1.0;
    result.accepted_at_saturation = full.accepted_rate;
    return result;
  }
  for (int iter = 0; iter < config.bisection_iterations; ++iter) {
    const double mid = (lo + hi) / 2.0;
    const sim::SimResult probe = simulate_at_rate(
        topo, link_latencies, endpoints_per_tile, pattern, config, mid,
        table);
    if (is_saturated(probe, result.zero_load_latency_cycles, config)) {
      hi = mid;
    } else {
      lo = mid;
      at_lo = probe;
    }
  }
  result.saturation_throughput = lo;
  result.accepted_at_saturation = at_lo.accepted_rate;
  return result;
}

}  // namespace shg::eval
