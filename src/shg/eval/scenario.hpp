// The four evaluation scenarios of Section V-b / Figure 6, including the
// customized sparse Hamming graph parameters the paper reports.
#pragma once

#include <string>
#include <vector>

#include "shg/tech/presets.hpp"
#include "shg/topo/registry.hpp"

namespace shg::eval {

/// One Figure 6 sub-plot: an architecture plus the paper's customized SHG
/// configuration for it.
struct Scenario {
  std::string label;      ///< "a" .. "d"
  tech::ArchParams arch;
  topo::ShgParams shg;    ///< the paper's customized SR / SC sets
};

/// Scenario a/b/c/d with the parameters printed in Figure 6:
///  a) 8x8,  35 MGE, SR={4},    SC={2,5}
///  b) 8x8,  70 MGE, SR={2,4},  SC={2,4}
///  c) 8x16, 35 MGE, SR={3},    SC={2,5}
///  d) 8x16, 70 MGE, SR={2,4},  SC={2,4}
Scenario figure6_scenario(tech::KncScenario which);

/// All four scenarios in order.
std::vector<Scenario> figure6_scenarios();

/// The topologies compared in one Figure 6 sub-plot: every applicable
/// established topology plus the scenario's customized sparse Hamming graph
/// (last entry).
std::vector<topo::Topology> scenario_topologies(const Scenario& scenario);

}  // namespace shg::eval
