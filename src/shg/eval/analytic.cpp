#include "shg/eval/analytic.hpp"

#include "shg/graph/shortest_paths.hpp"

namespace shg::eval {

AnalyticPerf analytic_performance(const topo::Topology& topo,
                                  const std::vector<int>& link_latencies,
                                  int router_delay_cycles,
                                  int injection_delay_cycles,
                                  int packet_size_flits) {
  const auto& g = topo.graph();
  SHG_REQUIRE(static_cast<int>(link_latencies.size()) == g.num_edges(),
              "need one latency per link");
  SHG_REQUIRE(packet_size_flits >= 1, "packets need at least one flit");
  SHG_REQUIRE(router_delay_cycles >= 0 && injection_delay_cycles >= 0,
              "delays must be non-negative");

  std::vector<double> weights(link_latencies.begin(), link_latencies.end());
  AnalyticPerf result;
  double latency_total = 0.0;
  double hops_total = 0.0;
  long long pairs = 0;
  for (graph::NodeId dest = 0; dest < g.num_nodes(); ++dest) {
    const auto hops = graph::bfs_distances(g, dest);
    const auto link_sum =
        graph::min_weight_over_min_hop_paths(g, dest, weights);
    for (graph::NodeId src = 0; src < g.num_nodes(); ++src) {
      if (src == dest) continue;
      const int h = hops[static_cast<std::size_t>(src)];
      SHG_REQUIRE(h != graph::kUnreachable, "topology must be connected");
      // h hops = h+1 routers (source router through destination router).
      latency_total += injection_delay_cycles +
                       static_cast<double>(h + 1) * router_delay_cycles +
                       link_sum[static_cast<std::size_t>(src)] +
                       (packet_size_flits - 1);
      hops_total += h;
      ++pairs;
    }
  }
  result.zero_load_latency_cycles =
      latency_total / static_cast<double>(pairs);
  result.avg_hops = hops_total / static_cast<double>(pairs);
  result.capacity_bound =
      2.0 * static_cast<double>(g.num_edges()) /
      (static_cast<double>(g.num_nodes()) * result.avg_hops);
  return result;
}

}  // namespace shg::eval
