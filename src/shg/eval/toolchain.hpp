// The complete prediction toolchain of Fig. 3: architectural parameters +
// topology -> cost model -> (topology with link latency estimates) ->
// cycle-accurate simulation -> cost and performance predictions.
#pragma once

#include "shg/eval/perf.hpp"
#include "shg/model/cost_model.hpp"
#include "shg/tech/arch_params.hpp"

namespace shg::eval {

/// Joint cost/performance prediction of one topology on one architecture.
struct Prediction {
  model::CostReport cost;
  PerfResult perf;
};

/// Runs the full toolchain. If `pattern` is null, random uniform traffic is
/// used (the Figure 6 configuration).
Prediction predict(const tech::ArchParams& arch, const topo::Topology& topo,
                   const PerfConfig& config,
                   const sim::TrafficPattern* pattern = nullptr);

/// Cost-only prediction (the fast inner loop of the customization strategy;
/// skips the simulation).
model::CostReport predict_cost(const tech::ArchParams& arch,
                               const topo::Topology& topo);

/// Default performance-evaluation configuration mirroring Section V-b:
/// 8 VCs, 32-flit buffers.
PerfConfig default_perf_config(const tech::ArchParams& arch);

}  // namespace shg::eval
