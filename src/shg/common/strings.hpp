// Small string formatting helpers shared across modules.
#pragma once

#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace shg {

/// Formats a floating point value with the given number of decimals.
std::string fmt_double(double value, int decimals);

/// Formats a set of integers as "{a, b, c}" (used for SR / SC sets).
std::string fmt_int_set(const std::set<int>& values);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace shg
