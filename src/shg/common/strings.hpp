// Small string formatting helpers shared across modules.
#pragma once

#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace shg {

/// Formats a floating point value with the given number of decimals.
std::string fmt_double(double value, int decimals);

/// Formats a set of integers as "{a, b, c}" (used for SR / SC sets).
std::string fmt_int_set(const std::set<int>& values);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// RFC-4180 CSV field quoting: returns the value unchanged unless it
/// contains a comma, double quote, or newline, in which case it is wrapped
/// in quotes with embedded quotes doubled (so labels like
/// "hotspot:0,7:0.2" survive a long-format CSV).
std::string csv_field(const std::string& value);

}  // namespace shg
