#include "shg/common/strings.hpp"

#include <iomanip>

namespace shg {

std::string fmt_double(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string fmt_int_set(const std::set<int>& values) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int v : values) {
    if (!first) os << ", ";
    os << v;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

}  // namespace shg
