// 2D geometry primitives used by the floorplanning and routing stages.
//
// Two coordinate systems appear throughout the physical model:
//  * continuous chip coordinates in millimeters (PointMM / RectMM), and
//  * discrete unit-cell / grid coordinates (PointI).
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>

namespace shg {

/// Discrete grid point (unit cells, channel indices, tile coordinates).
struct PointI {
  int x = 0;
  int y = 0;

  friend constexpr auto operator<=>(const PointI&, const PointI&) = default;
  friend constexpr PointI operator+(PointI a, PointI b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr PointI operator-(PointI a, PointI b) {
    return {a.x - b.x, a.y - b.y};
  }
};

/// Manhattan distance between two grid points.
constexpr int manhattan(PointI a, PointI b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Continuous point in chip coordinates (millimeters).
struct PointMM {
  double x = 0.0;
  double y = 0.0;

  friend constexpr auto operator<=>(const PointMM&, const PointMM&) = default;
};

/// Manhattan distance in millimeters.
inline double manhattan(PointMM a, PointMM b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance in millimeters.
inline double euclidean(PointMM a, PointMM b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangle in chip coordinates (millimeters).
/// `lo` is the lower-left corner, `hi` the upper-right corner.
struct RectMM {
  PointMM lo;
  PointMM hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr double area() const { return width() * height(); }
  constexpr PointMM center() const {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }
  constexpr bool contains(PointMM p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  constexpr bool overlaps(const RectMM& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }
};

}  // namespace shg
