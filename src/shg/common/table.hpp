// Column-aligned text tables for benchmark / experiment output.
//
// Every bench binary prints its paper table through this class so the
// produced rows are uniform and diffable against the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace shg {

/// A simple right-padded text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table with aligned columns and a separator line.
  std::string to_string() const;

  /// Renders the table as GitHub-flavored markdown.
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace shg
