// Error handling primitives for the shgnoc library.
//
// The library reports contract violations and invalid configurations via
// shg::Error (a std::runtime_error). SHG_REQUIRE is used for precondition
// checks on public API boundaries; SHG_ASSERT for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace shg {

/// Exception type thrown by all shgnoc components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* kind, const char* file, int line,
                              const char* cond, const std::string& msg);
}  // namespace detail

}  // namespace shg

/// Precondition check: throws shg::Error with location info when violated.
#define SHG_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::shg::detail::throw_error("precondition", __FILE__, __LINE__, #cond, \
                                 (msg));                                    \
    }                                                                       \
  } while (false)

/// Internal invariant check: indicates a library bug when violated.
#define SHG_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::shg::detail::throw_error("invariant", __FILE__, __LINE__, #cond, \
                                 (msg));                                  \
    }                                                                     \
  } while (false)
