#include "shg/common/error.hpp"

#include <sstream>

namespace shg::detail {

void throw_error(const char* kind, const char* file, int line,
                 const char* cond, const std::string& msg) {
  std::ostringstream os;
  os << "shgnoc " << kind << " violation at " << file << ":" << line << ": `"
     << cond << "`";
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace shg::detail
