// Pluggable diagnostic sink for library warnings.
//
// Library code (the cache/session disk tiers foremost) reports recoverable
// conditions — corrupt cache files, wrong payload kinds, checksum failures,
// short writes — as one-line warnings. Historically those went straight to
// stderr with fprintf; a resident server multiplexing many requests over
// one process needs to (a) capture them instead of interleaving them on its
// stderr and (b) attribute each line to the request being served when it
// was emitted. This module is that indirection:
//
//  * `warnf(fmt, ...)` formats one complete line (the format string carries
//    its own trailing '\n', exactly as the fprintf calls it replaced did)
//    and hands it to the installed sink;
//  * the DEFAULT sink writes the line verbatim to stderr — byte-identical
//    to the pre-sink fprintf output, so nothing changes for batch binaries
//    and existing tests that scrape stderr;
//  * `set_sink` installs a process-wide replacement (the server installs
//    one that tags lines with request ids and routes them to its own log);
//    passing nullptr restores the default. Installation and emission are
//    thread-safe: emission holds a shared snapshot of the sink, so a sink
//    swap never races an in-flight warning;
//  * `ScopedContext` sets a THREAD-LOCAL context string ("req-42") for the
//    current scope. The default sink ignores it (exact legacy bytes); a
//    custom sink receives it alongside the line and may prepend it.
//
// Warnings are rare (corrupt files, failed writes); this path is not
// performance-sensitive and takes a mutex-protected shared_ptr copy per
// emission.
#pragma once

#include <functional>
#include <string>

namespace shg::log {

/// A sink receives one complete warning line (trailing '\n' included) plus
/// the emitting thread's context string ("" when none is set). Sinks may be
/// called concurrently from multiple threads and must synchronize any
/// shared state they touch.
using Sink =
    std::function<void(const std::string& context, const std::string& line)>;

/// Installs a process-wide sink; nullptr restores the default stderr sink.
/// Thread-safe against concurrent emission.
void set_sink(Sink sink);

/// printf-style warning; the formatted line goes to the installed sink.
/// Callers include the trailing '\n' in `fmt` (the sink forwards bytes
/// verbatim; the default sink's output is byte-identical to the fprintf
/// call this replaced).
void warnf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// The calling thread's current context ("" when unset).
const std::string& context();

/// Sets the thread-local context for the enclosing scope (nestable; the
/// previous context is restored on destruction).
class ScopedContext {
 public:
  explicit ScopedContext(std::string context);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::string previous_;
};

}  // namespace shg::log
