// Deterministic pseudo-random number generation.
//
// All stochastic components (traffic generators, randomized tie-breaking,
// search heuristics) draw from this PRNG so that every experiment in the
// repository is reproducible from a fixed seed. The generator is
// xoshiro256** (Blackman & Vigna), which is fast and has no observable
// statistical defects at the scale of NoC simulation.
#pragma once

#include <cstdint>

#include "shg/common/error.hpp"

namespace shg {

/// xoshiro256** PRNG with splitmix64 seeding.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    SHG_REQUIRE(bound > 0, "Prng::below requires a positive bound");
    // Rejection sampling: discard the 2^64 mod bound smallest values so the
    // modulo is exactly uniform.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t x = (*this)();
      if (x >= threshold) return x % bound;
    }
  }

  /// Uniform int in [lo, hi] inclusive.
  int range(int lo, int hi) {
    SHG_REQUIRE(lo <= hi, "Prng::range requires lo <= hi");
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace shg
