// Minimal thread-pool parallelism for coarse-grained fan-out loops.
//
// Contract (relied on by DSE screening, exploration and load sweeps):
//  * parallel_for(n, fn) invokes fn(i) exactly once for every i in [0, n)
//    (unless a task throws, which aborts the remaining unclaimed tasks);
//  * tasks write results into caller-owned slots indexed by i, so the
//    observable output ordering is deterministic and identical to a serial
//    loop regardless of the worker count or interleaving;
//  * fn must not touch shared mutable state (give each task its own PRNG,
//    workspace and output slot — seed per-task PRNGs from the task index);
//  * exceptions thrown by fn are captured and the first one (by task index)
//    is rethrown on the calling thread after all workers finish;
//  * the worker count honors set_max_threads(); with <= 1 workers (or n <= 1)
//    the loop degrades to a plain serial loop on the calling thread, which
//    the determinism tests use as the reference execution.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "shg/common/error.hpp"

namespace shg {

namespace detail {
inline std::atomic<int>& max_threads_setting() {
  static std::atomic<int> value{0};  // 0 = auto (hardware concurrency)
  return value;
}
}  // namespace detail

/// Caps the number of worker threads parallel_for may use. 0 restores the
/// automatic choice (hardware concurrency); 1 forces serial execution.
inline void set_max_threads(int n) {
  SHG_REQUIRE(n >= 0, "thread cap must be >= 0 (0 = auto)");
  detail::max_threads_setting().store(n, std::memory_order_relaxed);
}

/// The effective worker cap: set_max_threads() value, or the hardware
/// concurrency when unset (at least 1).
inline int max_threads() {
  const int setting =
      detail::max_threads_setting().load(std::memory_order_relaxed);
  if (setting > 0) return setting;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Number of workers parallel_for / parallel_for_with_worker use for `n`
/// tasks (0 for an empty loop). Callers that keep per-worker scratch state
/// size their state arrays with this.
inline std::size_t parallel_worker_count(std::size_t n) {
  if (n == 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(max_threads()), n);
}

/// Like parallel_for below, but fn also receives the executing worker's
/// index in [0, parallel_worker_count(n)). Tasks sharing a worker run
/// sequentially, so per-worker scratch buffers (BFS workspaces, geometry
/// caches, routing scratch) are safe to reuse across them and amortize
/// their allocations over the whole loop — that is this overload's sole
/// purpose; the task-to-worker mapping is otherwise unspecified and must
/// not influence results (the parallel_for determinism contract applies
/// unchanged).
template <typename Fn>
void parallel_for_with_worker(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers = parallel_worker_count(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, std::size_t{0});
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> have_failure{false};
  // First failure by task index, so the rethrown error is deterministic.
  std::mutex failure_mutex;
  std::size_t failed_index = n;
  std::exception_ptr failure = nullptr;

  auto worker = [&](std::size_t worker_id) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (have_failure.load(std::memory_order_relaxed)) return;
      try {
        fn(i, worker_id);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
        have_failure.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
}

/// Runs fn(i) for every i in [0, n) across up to max_threads() workers.
/// Tasks are claimed from a shared atomic counter, so long tasks do not
/// stall short ones. Blocks until every task has finished.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for_with_worker(n,
                           [&fn](std::size_t i, std::size_t) { fn(i); });
}

/// Persistent worker pool for open-ended task streams — the dispatch
/// substrate of the serving layer (src/shg/serve/), where requests arrive
/// continuously and fork-join parallel_for (which spawns and joins threads
/// per call) is the wrong shape.
///
/// Contract:
///  * submit() enqueues one task; some worker executes it exactly once.
///    Tasks are dequeued in FIFO order, but tasks on different workers run
///    concurrently and may COMPLETE in any order — callers needing a
///    deterministic output order tag tasks themselves (the serve layer
///    correlates by request id);
///  * tasks must confine shared mutable state behind their own
///    synchronization (the serve layer's session tiers are sharded and
///    locked for exactly this reason);
///  * a task that throws is contained: the exception is swallowed after
///    invoking the pool's error handler (set_error_handler; default
///    ignores), and the worker continues — one bad request must never take
///    the pool down;
///  * drain() blocks until every task submitted so far has finished;
///  * the destructor drains, then joins every worker.
class WorkerPool {
 public:
  /// `workers` = 0 uses max_threads(). At least one worker always runs.
  explicit WorkerPool(int workers = 0) {
    const int requested = workers > 0 ? workers : max_threads();
    const int count = std::max(requested, 1);
    threads_.reserve(static_cast<std::size_t>(count));
    for (int t = 0; t < count; ++t) {
      threads_.emplace_back([this] { run_worker(); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Installs the handler invoked (on the worker thread) when a task
  /// throws; pass nullptr to restore the ignore-errors default. Not
  /// synchronized against in-flight tasks: install before submitting.
  void set_error_handler(std::function<void(std::exception_ptr)> handler) {
    on_error_ = std::move(handler);
  }

  void submit(std::function<void()> task) {
    SHG_REQUIRE(task != nullptr, "cannot submit a null task");
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      SHG_REQUIRE(!stopping_, "cannot submit to a stopping WorkerPool");
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Blocks until the queue is empty and no task is executing.
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

 private:
  void run_worker() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ && drained
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      try {
        task();
      } catch (...) {
        if (on_error_) on_error_(std::current_exception());
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      idle_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::function<void(std::exception_ptr)> on_error_;
  std::vector<std::thread> threads_;
};

}  // namespace shg
