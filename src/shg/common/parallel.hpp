// Minimal thread-pool parallelism for coarse-grained fan-out loops.
//
// Contract (relied on by DSE screening, exploration and load sweeps):
//  * parallel_for(n, fn) invokes fn(i) exactly once for every i in [0, n)
//    (unless a task throws, which aborts the remaining unclaimed tasks);
//  * tasks write results into caller-owned slots indexed by i, so the
//    observable output ordering is deterministic and identical to a serial
//    loop regardless of the worker count or interleaving;
//  * fn must not touch shared mutable state (give each task its own PRNG,
//    workspace and output slot — seed per-task PRNGs from the task index);
//  * exceptions thrown by fn are captured and the first one (by task index)
//    is rethrown on the calling thread after all workers finish;
//  * the worker count honors set_max_threads(); with <= 1 workers (or n <= 1)
//    the loop degrades to a plain serial loop on the calling thread, which
//    the determinism tests use as the reference execution.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "shg/common/error.hpp"

namespace shg {

namespace detail {
inline std::atomic<int>& max_threads_setting() {
  static std::atomic<int> value{0};  // 0 = auto (hardware concurrency)
  return value;
}
}  // namespace detail

/// Caps the number of worker threads parallel_for may use. 0 restores the
/// automatic choice (hardware concurrency); 1 forces serial execution.
inline void set_max_threads(int n) {
  SHG_REQUIRE(n >= 0, "thread cap must be >= 0 (0 = auto)");
  detail::max_threads_setting().store(n, std::memory_order_relaxed);
}

/// The effective worker cap: set_max_threads() value, or the hardware
/// concurrency when unset (at least 1).
inline int max_threads() {
  const int setting =
      detail::max_threads_setting().load(std::memory_order_relaxed);
  if (setting > 0) return setting;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Number of workers parallel_for / parallel_for_with_worker use for `n`
/// tasks (0 for an empty loop). Callers that keep per-worker scratch state
/// size their state arrays with this.
inline std::size_t parallel_worker_count(std::size_t n) {
  if (n == 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(max_threads()), n);
}

/// Like parallel_for below, but fn also receives the executing worker's
/// index in [0, parallel_worker_count(n)). Tasks sharing a worker run
/// sequentially, so per-worker scratch buffers (BFS workspaces, geometry
/// caches, routing scratch) are safe to reuse across them and amortize
/// their allocations over the whole loop — that is this overload's sole
/// purpose; the task-to-worker mapping is otherwise unspecified and must
/// not influence results (the parallel_for determinism contract applies
/// unchanged).
template <typename Fn>
void parallel_for_with_worker(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers = parallel_worker_count(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, std::size_t{0});
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> have_failure{false};
  // First failure by task index, so the rethrown error is deterministic.
  std::mutex failure_mutex;
  std::size_t failed_index = n;
  std::exception_ptr failure = nullptr;

  auto worker = [&](std::size_t worker_id) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (have_failure.load(std::memory_order_relaxed)) return;
      try {
        fn(i, worker_id);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (i < failed_index) {
          failed_index = i;
          failure = std::current_exception();
        }
        have_failure.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    pool.emplace_back(worker, t);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
  if (failure) std::rethrow_exception(failure);
}

/// Runs fn(i) for every i in [0, n) across up to max_threads() workers.
/// Tasks are claimed from a shared atomic counter, so long tasks do not
/// stall short ones. Blocks until every task has finished.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for_with_worker(n,
                           [&fn](std::size_t i, std::size_t) { fn(i); });
}

}  // namespace shg
