#include "shg/common/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>

namespace shg::log {

namespace {

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

/// The installed sink, shared so an emission in flight keeps its snapshot
/// alive across a concurrent set_sink. Null means the default stderr sink.
std::shared_ptr<const Sink>& sink_slot() {
  static std::shared_ptr<const Sink> slot;
  return slot;
}

std::shared_ptr<const Sink> current_sink() {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  return sink_slot();
}

std::string& thread_context() {
  thread_local std::string context;
  return context;
}

}  // namespace

void set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
}

void warnf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string line;
  if (needed > 0) {
    line.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(line.data(), line.size(), fmt, args_copy);
    line.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);

  if (const auto sink = current_sink()) {
    (*sink)(thread_context(), line);
  } else {
    // Default sink: verbatim stderr bytes, context ignored — exactly the
    // fprintf(stderr, ...) output this module replaced.
    std::fputs(line.c_str(), stderr);
  }
}

const std::string& context() { return thread_context(); }

ScopedContext::ScopedContext(std::string context)
    : previous_(std::exchange(thread_context(), std::move(context))) {}

ScopedContext::~ScopedContext() { thread_context() = std::move(previous_); }

}  // namespace shg::log
