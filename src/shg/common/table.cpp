#include "shg/common/table.hpp"

#include <algorithm>
#include <sstream>

#include "shg/common/error.hpp"

namespace shg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SHG_REQUIRE(!header_.empty(), "table header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  SHG_REQUIRE(row.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(row));
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

void append_padded(std::ostringstream& os, const std::string& s,
                   std::size_t width) {
  os << s;
  for (std::size_t i = s.size(); i < width; ++i) os << ' ';
}
}  // namespace

std::string Table::to_string() const {
  const auto widths = column_widths(header_, rows_);
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "  ";
    append_padded(os, header_[c], widths[c]);
  }
  os << '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      append_padded(os, row[c], widths[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << "|";
  for (const auto& h : header_) os << " " << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const auto& cell : row) os << " " << cell << " |";
    os << "\n";
  }
  return os.str();
}

}  // namespace shg
