#include "shg/graph/cdg.hpp"

#include <cstdint>

#include "shg/common/error.hpp"

namespace shg::graph {

bool has_cycle(int num_nodes, const std::vector<std::pair<int, int>>& edges) {
  SHG_REQUIRE(num_nodes >= 0, "node count must be non-negative");
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes));
  for (const auto& [from, to] : edges) {
    SHG_REQUIRE(from >= 0 && from < num_nodes, "edge endpoint out of range");
    SHG_REQUIRE(to >= 0 && to < num_nodes, "edge endpoint out of range");
    adj[static_cast<std::size_t>(from)].push_back(to);
  }

  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(static_cast<std::size_t>(num_nodes),
                           Color::kWhite);
  // Iterative DFS; each stack frame tracks the next out-edge to explore.
  std::vector<std::pair<int, std::size_t>> stack;
  for (int start = 0; start < num_nodes; ++start) {
    if (color[static_cast<std::size_t>(start)] != Color::kWhite) continue;
    color[static_cast<std::size_t>(start)] = Color::kGray;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& out = adj[static_cast<std::size_t>(u)];
      if (next < out.size()) {
        const int v = out[next++];
        switch (color[static_cast<std::size_t>(v)]) {
          case Color::kGray:
            return true;  // back edge
          case Color::kWhite:
            color[static_cast<std::size_t>(v)] = Color::kGray;
            stack.emplace_back(v, 0);
            break;
          case Color::kBlack:
            break;
        }
      } else {
        color[static_cast<std::size_t>(u)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace shg::graph
