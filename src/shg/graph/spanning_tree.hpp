// BFS spanning tree and up*/down* routing tables.
//
// The simulator's escape virtual channel uses up*/down* routing (Duato-style
// deadlock avoidance for arbitrary topologies): all links are oriented by a
// total order derived from a BFS tree ("up" = toward lower (level, id)).
// A legal path consists of zero or more up moves followed by zero or more
// down moves, which makes the escape channel dependency graph acyclic on any
// connected topology.
#pragma once

#include <vector>

#include "shg/graph/adjacency.hpp"

namespace shg::graph {

/// BFS spanning tree rooted at `root` with the node ordering for up*/down*.
struct SpanningTree {
  NodeId root = 0;
  std::vector<NodeId> parent;  ///< parent[root] == root
  std::vector<int> level;      ///< BFS depth of each node

  /// True iff traversing the link from -> to is an "up" move
  /// (toward lower (level, id) in the total order).
  bool is_up(NodeId from, NodeId to) const {
    const auto lf = level[static_cast<std::size_t>(from)];
    const auto lt = level[static_cast<std::size_t>(to)];
    if (lf != lt) return lt < lf;
    return to < from;
  }
};

/// Builds the BFS spanning tree of a connected graph.
SpanningTree bfs_spanning_tree(const Graph& g, NodeId root);

/// Precomputed up*/down* next hops.
///
/// phase0[u][d]: next hop from u toward d when the packet may still move up
/// (always defined for u != d; -1 on the diagonal).
/// phase1[u][d]: next hop when the packet has already moved down and may only
/// continue downward (-1 where no all-down path exists; routers only consult
/// this entry when it is guaranteed to exist, because phase-0 paths only turn
/// downward once the remaining path is all-down).
struct UpDownTables {
  std::vector<std::vector<NodeId>> phase0;
  std::vector<std::vector<NodeId>> phase1;
};

/// Computes shortest legal up*/down* next hops for every (node, destination).
UpDownTables up_down_tables(const Graph& g, const SpanningTree& tree);

}  // namespace shg::graph
