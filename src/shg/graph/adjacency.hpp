// Undirected simple graph with indexed edges.
//
// This is the structural substrate for topologies: nodes are tiles, edges
// are router-to-router links. Edges carry stable indices so higher layers
// (physical routing, simulator channels) can attach per-link attributes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "shg/common/error.hpp"

namespace shg::graph {

using NodeId = int;
using EdgeId = int;

/// An undirected edge between nodes u and v (u != v).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  /// Returns the endpoint opposite to `from`.
  NodeId other(NodeId from) const {
    SHG_REQUIRE(from == u || from == v, "node is not an endpoint of edge");
    return from == u ? v : u;
  }

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// (neighbor, edge id) entry in an adjacency list.
struct Neighbor {
  NodeId node = 0;
  EdgeId edge = 0;
};

/// Undirected graph with O(1) edge lookup and per-node adjacency lists.
/// Parallel edges are rejected; self loops are rejected.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge; returns its id. Throws on duplicates/loops.
  EdgeId add_edge(NodeId u, NodeId v);

  /// True iff an edge {u, v} exists.
  bool has_edge(NodeId u, NodeId v) const;

  const Edge& edge(EdgeId e) const {
    SHG_REQUIRE(e >= 0 && e < num_edges(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<Neighbor>& neighbors(NodeId u) const {
    SHG_REQUIRE(u >= 0 && u < num_nodes(), "node id out of range");
    return adj_[static_cast<std::size_t>(u)];
  }

  int degree(NodeId u) const {
    return static_cast<int>(neighbors(u).size());
  }

  /// Maximum degree over all nodes (0 for an empty graph).
  int max_degree() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adj_;
};

}  // namespace shg::graph
