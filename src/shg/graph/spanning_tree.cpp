#include "shg/graph/spanning_tree.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "shg/graph/shortest_paths.hpp"

namespace shg::graph {

SpanningTree bfs_spanning_tree(const Graph& g, NodeId root) {
  SHG_REQUIRE(root >= 0 && root < g.num_nodes(), "root out of range");
  SHG_REQUIRE(is_connected(g), "spanning tree requires a connected graph");
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  tree.level.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  tree.parent[static_cast<std::size_t>(root)] = root;
  tree.level[static_cast<std::size_t>(root)] = 0;
  std::queue<NodeId> queue;
  queue.push(root);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Neighbor& n : g.neighbors(u)) {
      if (tree.level[static_cast<std::size_t>(n.node)] < 0) {
        tree.level[static_cast<std::size_t>(n.node)] =
            tree.level[static_cast<std::size_t>(u)] + 1;
        tree.parent[static_cast<std::size_t>(n.node)] = u;
        queue.push(n.node);
      }
    }
  }
  return tree;
}

UpDownTables up_down_tables(const Graph& g, const SpanningTree& tree) {
  const int n = g.num_nodes();
  SHG_REQUIRE(static_cast<int>(tree.level.size()) == n,
              "tree does not match graph");
  constexpr int kInf = std::numeric_limits<int>::max() / 2;

  // Total order: up moves strictly decrease the (level, id) rank, down moves
  // strictly increase it, so both per-phase graphs are acyclic and a single
  // sweep in rank order computes exact distances.
  std::vector<NodeId> by_rank(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) by_rank[static_cast<std::size_t>(u)] = u;
  std::sort(by_rank.begin(), by_rank.end(), [&](NodeId a, NodeId b) {
    const int la = tree.level[static_cast<std::size_t>(a)];
    const int lb = tree.level[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return a < b;
  });

  UpDownTables tables;
  tables.phase0.assign(static_cast<std::size_t>(n),
                       std::vector<NodeId>(static_cast<std::size_t>(n), -1));
  tables.phase1.assign(static_cast<std::size_t>(n),
                       std::vector<NodeId>(static_cast<std::size_t>(n), -1));

  std::vector<int> dist0(static_cast<std::size_t>(n));
  std::vector<int> dist1(static_cast<std::size_t>(n));
  for (NodeId d = 0; d < n; ++d) {
    std::fill(dist0.begin(), dist0.end(), kInf);
    std::fill(dist1.begin(), dist1.end(), kInf);
    dist0[static_cast<std::size_t>(d)] = 0;
    dist1[static_cast<std::size_t>(d)] = 0;

    // Phase 1 (only down moves remain): a down move goes to higher rank, so
    // process nodes from highest rank to lowest.
    for (auto it = by_rank.rbegin(); it != by_rank.rend(); ++it) {
      const NodeId u = *it;
      if (u == d) continue;
      for (const Neighbor& nb : g.neighbors(u)) {
        if (tree.is_up(u, nb.node)) continue;  // down moves only
        const int cand = dist1[static_cast<std::size_t>(nb.node)];
        if (cand + 1 < dist1[static_cast<std::size_t>(u)]) {
          dist1[static_cast<std::size_t>(u)] = cand + 1;
          tables.phase1[static_cast<std::size_t>(u)]
                       [static_cast<std::size_t>(d)] = nb.node;
        }
      }
    }

    // Phase 0 (may still move up): an up move goes to lower rank, so process
    // nodes from lowest rank to highest; a phase transition consults dist1.
    for (const NodeId u : by_rank) {
      if (u == d) continue;
      int best = kInf;
      NodeId hop = -1;
      for (const Neighbor& nb : g.neighbors(u)) {
        const int cand = tree.is_up(u, nb.node)
                             ? dist0[static_cast<std::size_t>(nb.node)]
                             : dist1[static_cast<std::size_t>(nb.node)];
        if (cand + 1 < best) {
          best = cand + 1;
          hop = nb.node;
        }
      }
      dist0[static_cast<std::size_t>(u)] = best;
      tables.phase0[static_cast<std::size_t>(u)][static_cast<std::size_t>(d)] =
          hop;
      SHG_ASSERT(hop >= 0, "up*/down* must connect all pairs");
    }
  }
  return tables;
}

}  // namespace shg::graph
