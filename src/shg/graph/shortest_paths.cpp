#include "shg/graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

namespace shg::graph {

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  SHG_REQUIRE(src >= 0 && src < g.num_nodes(), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        kUnreachable);
  std::queue<NodeId> queue;
  dist[static_cast<std::size_t>(src)] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Neighbor& n : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(n.node)];
      if (d == kUnreachable) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push(n.node);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<int>> result;
  result.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    result.push_back(bfs_distances(g, u));
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d == kUnreachable; });
}

int diameter(const Graph& g) {
  SHG_REQUIRE(is_connected(g), "diameter requires a connected graph");
  int best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (int d : dist) best = std::max(best, d);
  }
  return best;
}

double average_hops(const Graph& g) {
  SHG_REQUIRE(is_connected(g), "average_hops requires a connected graph");
  SHG_REQUIRE(g.num_nodes() >= 2, "average_hops requires >= 2 nodes");
  double total = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (int d : dist) total += d;
  }
  const double pairs =
      static_cast<double>(g.num_nodes()) * (g.num_nodes() - 1);
  return total / pairs;
}

std::vector<double> dijkstra(const Graph& g, NodeId src,
                             const std::vector<double>& edge_weight) {
  SHG_REQUIRE(src >= 0 && src < g.num_nodes(), "dijkstra source out of range");
  SHG_REQUIRE(static_cast<int>(edge_weight.size()) == g.num_edges(),
              "one weight per edge required");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), kInf);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const Neighbor& n : g.neighbors(u)) {
      const double w = edge_weight[static_cast<std::size_t>(n.edge)];
      SHG_REQUIRE(w >= 0.0, "dijkstra requires non-negative weights");
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(n.node)]) {
        dist[static_cast<std::size_t>(n.node)] = nd;
        heap.emplace(nd, n.node);
      }
    }
  }
  return dist;
}

namespace {

enum class HopDagObjective { kMin, kMax };

std::vector<double> weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight,
    HopDagObjective objective) {
  SHG_REQUIRE(dest >= 0 && dest < g.num_nodes(), "dest out of range");
  SHG_REQUIRE(static_cast<int>(edge_weight.size()) == g.num_edges(),
              "one weight per edge required");
  const auto hops = bfs_distances(g, dest);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> weight(static_cast<std::size_t>(g.num_nodes()), kInf);
  weight[static_cast<std::size_t>(dest)] = 0.0;

  // Process nodes in increasing hop distance; every hop-minimal path steps
  // from hop level h to level h-1, so a single DP sweep suffices.
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (hops[static_cast<std::size_t>(u)] != kUnreachable) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return hops[static_cast<std::size_t>(a)] < hops[static_cast<std::size_t>(b)];
  });
  for (NodeId u : order) {
    if (u == dest) continue;
    const int hu = hops[static_cast<std::size_t>(u)];
    double best = kInf;
    bool found = false;
    for (const Neighbor& n : g.neighbors(u)) {
      if (hops[static_cast<std::size_t>(n.node)] == hu - 1) {
        const double cand = weight[static_cast<std::size_t>(n.node)] +
                            edge_weight[static_cast<std::size_t>(n.edge)];
        if (!found) {
          best = cand;
          found = true;
        } else if (objective == HopDagObjective::kMin) {
          best = std::min(best, cand);
        } else {
          best = std::max(best, cand);
        }
      }
    }
    weight[static_cast<std::size_t>(u)] = best;
  }
  return weight;
}

}  // namespace

std::vector<double> min_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight) {
  return weight_over_min_hop_paths(g, dest, edge_weight,
                                   HopDagObjective::kMin);
}

std::vector<double> max_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight) {
  return weight_over_min_hop_paths(g, dest, edge_weight,
                                   HopDagObjective::kMax);
}

}  // namespace shg::graph
