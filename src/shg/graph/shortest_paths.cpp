#include "shg/graph/shortest_paths.hpp"

#include <algorithm>
#include <bit>
#include <queue>

namespace shg::graph {

void bfs_distances(const Graph& g, NodeId src, BfsWorkspace& ws) {
  SHG_REQUIRE(src >= 0 && src < g.num_nodes(), "bfs source out of range");
  const int n = g.num_nodes();
  ws.resize(n);
  int* dist = ws.dist.data();
  NodeId* queue = ws.queue.data();
  std::fill(dist, dist + n, kUnreachable);
  dist[src] = 0;
  queue[0] = src;
  int head = 0;
  int tail = 1;
  while (head < tail) {
    const NodeId u = queue[head++];
    const int du = dist[u] + 1;
    for (const Neighbor& nb : g.neighbors(u)) {
      if (dist[nb.node] == kUnreachable) {
        dist[nb.node] = du;
        queue[tail++] = nb.node;
      }
    }
  }
}

namespace {

/// No-op label-change observer for the plain repair overload.
struct NoRepairStats {
  void on_assign(int /*old_dist*/, int /*new_dist*/) {}
  void finish(int /*max_assigned*/) {}
};

/// Keeps a distance histogram and DistRowStats exact under label changes.
/// The histogram is exact after every assignment (stale queue entries do
/// not matter — each assignment moves exactly one node between buckets),
/// the sum telescopes over assignments, and the maximum is re-derived from
/// the histogram at the end by walking down from the largest candidate.
struct HistRepairStats {
  int* hist;
  DistRowStats* stats;

  void on_assign(int old_dist, int new_dist) {
    if (old_dist == kUnreachable) {
      // First finite label for this node: a new reachable pair.
      ++stats->reachable;
      stats->sum += new_dist;
    } else {
      stats->sum += new_dist - old_dist;
      --hist[old_dist];
    }
    ++hist[new_dist];
  }

  void finish(int max_assigned) {
    // Distances only shrink under edge additions, but newly reached nodes
    // may enter above the old maximum — start from the larger candidate.
    int hi = std::max(stats->max, max_assigned);
    while (hi > 0 && hist[hi] == 0) --hi;
    stats->max = hi;
  }
};

template <typename Stats>
void repair_distances(const Graph& g, const std::vector<Edge>& new_edges,
                      BfsWorkspace& ws, Stats stats) {
  const int n = g.num_nodes();
  ws.resize(n);
  int* dist = ws.dist.data();

  // Seed: endpoints whose label shrinks through a new edge, bucketed by
  // their tentative label. The unreachable guard keeps kUnreachable + 1
  // from overflowing and lets the repair grow a region the new edges just
  // connected. Edge membership in `g` is a documented precondition, not
  // re-validated here: screening repairs one row per source, and an
  // adjacency scan per edge per source would cost a third of the sweep the
  // repair exists to avoid. Endpoint ids are still range-checked.
  int lo = n;   // first non-empty level
  int hi = -1;  // last non-empty level; labels stay < n (see below)
  auto improve = [&](NodeId v, int label) {
    SHG_ASSERT(label < n, "repair label out of range: ws.dist does not hold "
                          "BFS distances of a subgraph");
    stats.on_assign(dist[v], label);
    dist[v] = label;
    ws.levels[static_cast<std::size_t>(label)].push_back(v);
    if (label < lo) lo = label;
    if (label > hi) hi = label;
  };
  for (const Edge& e : new_edges) {
    SHG_REQUIRE(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                "new edge endpoint out of range");
    if (dist[e.u] != kUnreachable && dist[e.u] + 1 < dist[e.v]) {
      improve(e.v, dist[e.u] + 1);
    }
    if (dist[e.v] != kUnreachable && dist[e.v] + 1 < dist[e.u]) {
      improve(e.u, dist[e.v] + 1);
    }
  }
  if (hi < 0) return;  // no label shrinks: the row is already correct

  // Dial-style propagation in ascending label order: when level L is
  // processed every smaller label is final, so a node is expanded exactly
  // once — at its final label — and entries whose label dropped after they
  // were bucketed are skipped as stale. Only nodes whose distance actually
  // changed (plus their adjacency) are touched, and the level walk stops at
  // the deepest bucketed label rather than n. Labels never reach n: a
  // final label of n-1 means a shortest path covering every node, whose
  // successors are all labeled already.
  for (int level = lo; level <= hi; ++level) {
    std::vector<NodeId>& frontier = ws.levels[static_cast<std::size_t>(level)];
    // Relaxations from level L push to level L+1 only, never into this
    // frontier, so plain index iteration is safe.
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const NodeId u = frontier[i];
      if (dist[u] != level) continue;  // improved after bucketing: stale
      const int next = level + 1;
      for (const Neighbor& nb : g.neighbors(u)) {
        if (next < dist[nb.node]) {
          SHG_ASSERT(next < n,
                     "repair label out of range: ws.dist does not hold BFS "
                     "distances of a subgraph");
          stats.on_assign(dist[nb.node], next);
          dist[nb.node] = next;
          ws.levels[static_cast<std::size_t>(next)].push_back(nb.node);
          if (next > hi) hi = next;
        }
      }
    }
    frontier.clear();  // restore the all-empty workspace invariant
  }
  stats.finish(hi);
}

}  // namespace

void update_distances_add_edges(const Graph& g,
                                const std::vector<Edge>& new_edges,
                                BfsWorkspace& ws) {
  repair_distances(g, new_edges, ws, NoRepairStats{});
}

void update_distances_add_edges(const Graph& g,
                                const std::vector<Edge>& new_edges,
                                BfsWorkspace& ws, int* hist,
                                DistRowStats& stats) {
  repair_distances(g, new_edges, ws, HistRepairStats{hist, &stats});
}

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  BfsWorkspace ws;
  bfs_distances(g, src, ws);
  ws.dist.resize(static_cast<std::size_t>(g.num_nodes()));
  return std::move(ws.dist);
}

std::vector<std::vector<int>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<int>> result;
  result.reserve(static_cast<std::size_t>(g.num_nodes()));
  BfsWorkspace ws;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    bfs_distances(g, u, ws);
    result.emplace_back(ws.dist.begin(),
                        ws.dist.begin() + g.num_nodes());
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  BfsWorkspace ws;
  bfs_distances(g, 0, ws);
  return std::none_of(ws.dist.begin(), ws.dist.begin() + g.num_nodes(),
                      [](int d) { return d == kUnreachable; });
}

DistanceSummary distance_summary(const Graph& g, BfsWorkspace& ws) {
  DistanceSummary summary;
  const int n = g.num_nodes();
  if (n <= 1) return summary;
  long long total = 0;
  long long reachable_pairs = 0;
  for (NodeId u = 0; u < n; ++u) {
    bfs_distances(g, u, ws);
    const int* dist = ws.dist.data();
    for (int v = 0; v < n; ++v) {
      const int d = dist[v];
      if (d == kUnreachable) {
        summary.connected = false;
        continue;
      }
      total += d;
      ++reachable_pairs;
      if (d > summary.diameter) summary.diameter = d;
    }
  }
  // reachable_pairs counts (u, u) self-pairs at distance 0; exclude them
  // from the mean's denominator (they contribute nothing to the numerator).
  reachable_pairs -= n;
  if (reachable_pairs > 0) {
    summary.avg_hops =
        static_cast<double>(total) / static_cast<double>(reachable_pairs);
  }
  return summary;
}

DistanceSummary distance_summary(const Graph& g) {
  BfsWorkspace ws;
  return distance_summary(g, ws);
}

void EdgeOverlay::assign(int num_nodes, const std::vector<Edge>& edges) {
  SHG_REQUIRE(num_nodes >= 0, "node count must be non-negative");
  offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges) {
    SHG_REQUIRE(e.u >= 0 && e.u < num_nodes && e.v >= 0 && e.v < num_nodes,
                "overlay edge endpoint out of range");
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (int u = 0; u < num_nodes; ++u) {
    offsets_[static_cast<std::size_t>(u) + 1] +=
        offsets_[static_cast<std::size_t>(u)];
  }
  targets_.resize(static_cast<std::size_t>(offsets_.back()));
  std::vector<int> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    targets_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    targets_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
}

AllPairsTotals all_pairs_totals(const Graph& g, const EdgeOverlay* overlay,
                                BitSweepWorkspace& ws) {
  const int n = g.num_nodes();
  SHG_REQUIRE(overlay == nullptr || overlay->num_nodes() == n,
              "overlay node count does not match the graph");
  AllPairsTotals totals;
  if (n <= 0) return totals;
  const std::size_t un = static_cast<std::size_t>(n);
  ws.reached.resize(un);
  ws.frontier.resize(un);
  ws.next.resize(un);

  // Sources in batches of 64: mask bit s of word v says "source base+s has
  // reached node v". One synchronous round per distance value d: a node's
  // next-mask is the OR of its neighbors' frontier masks minus everything
  // already reached, and popcounts of the fresh bits are exactly the number
  // of (source, node) pairs at distance d.
  for (int base = 0; base < n; base += 64) {
    const int count = std::min(64, n - base);
    totals.reachable_pairs += count;  // self pairs, distance 0
    std::fill(ws.reached.begin(), ws.reached.end(), 0);
    for (int s = 0; s < count; ++s) {
      ws.reached[static_cast<std::size_t>(base + s)] =
          std::uint64_t{1} << s;
    }
    std::copy(ws.reached.begin(), ws.reached.end(), ws.frontier.begin());

    for (int d = 1;; ++d) {
      bool any = false;
      for (NodeId v = 0; v < n; ++v) {
        std::uint64_t acc = 0;
        for (const Neighbor& nb : g.neighbors(v)) {
          acc |= ws.frontier[static_cast<std::size_t>(nb.node)];
        }
        if (overlay != nullptr) {
          for (const NodeId* u = overlay->begin(v); u != overlay->end(v);
               ++u) {
            acc |= ws.frontier[static_cast<std::size_t>(*u)];
          }
        }
        acc &= ~ws.reached[static_cast<std::size_t>(v)];
        ws.next[static_cast<std::size_t>(v)] = acc;
        if (acc != 0) {
          const int cnt = std::popcount(acc);
          totals.sum += static_cast<long long>(d) * cnt;
          totals.reachable_pairs += cnt;
          ws.reached[static_cast<std::size_t>(v)] |= acc;
          any = true;
        }
      }
      if (!any) break;
      if (d > totals.diameter) totals.diameter = d;
      std::swap(ws.frontier, ws.next);
    }
  }
  return totals;
}

int diameter(const Graph& g) {
  const DistanceSummary summary = distance_summary(g);
  SHG_REQUIRE(summary.connected, "diameter requires a connected graph");
  return summary.diameter;
}

double average_hops(const Graph& g) {
  SHG_REQUIRE(g.num_nodes() >= 2, "average_hops requires >= 2 nodes");
  const DistanceSummary summary = distance_summary(g);
  SHG_REQUIRE(summary.connected, "average_hops requires a connected graph");
  return summary.avg_hops;
}

std::vector<double> dijkstra(const Graph& g, NodeId src,
                             const std::vector<double>& edge_weight) {
  SHG_REQUIRE(src >= 0 && src < g.num_nodes(), "dijkstra source out of range");
  SHG_REQUIRE(static_cast<int>(edge_weight.size()) == g.num_edges(),
              "one weight per edge required");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), kInf);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const Neighbor& n : g.neighbors(u)) {
      const double w = edge_weight[static_cast<std::size_t>(n.edge)];
      SHG_REQUIRE(w >= 0.0, "dijkstra requires non-negative weights");
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(n.node)]) {
        dist[static_cast<std::size_t>(n.node)] = nd;
        heap.emplace(nd, n.node);
      }
    }
  }
  return dist;
}

namespace {

enum class HopDagObjective { kMin, kMax };

std::vector<double> weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight,
    HopDagObjective objective) {
  SHG_REQUIRE(dest >= 0 && dest < g.num_nodes(), "dest out of range");
  SHG_REQUIRE(static_cast<int>(edge_weight.size()) == g.num_edges(),
              "one weight per edge required");
  const auto hops = bfs_distances(g, dest);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> weight(static_cast<std::size_t>(g.num_nodes()), kInf);
  weight[static_cast<std::size_t>(dest)] = 0.0;

  // Process nodes in increasing hop distance; every hop-minimal path steps
  // from hop level h to level h-1, so a single DP sweep suffices.
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (hops[static_cast<std::size_t>(u)] != kUnreachable) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return hops[static_cast<std::size_t>(a)] < hops[static_cast<std::size_t>(b)];
  });
  for (NodeId u : order) {
    if (u == dest) continue;
    const int hu = hops[static_cast<std::size_t>(u)];
    double best = kInf;
    bool found = false;
    for (const Neighbor& n : g.neighbors(u)) {
      if (hops[static_cast<std::size_t>(n.node)] == hu - 1) {
        const double cand = weight[static_cast<std::size_t>(n.node)] +
                            edge_weight[static_cast<std::size_t>(n.edge)];
        if (!found) {
          best = cand;
          found = true;
        } else if (objective == HopDagObjective::kMin) {
          best = std::min(best, cand);
        } else {
          best = std::max(best, cand);
        }
      }
    }
    weight[static_cast<std::size_t>(u)] = best;
  }
  return weight;
}

}  // namespace

std::vector<double> min_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight) {
  return weight_over_min_hop_paths(g, dest, edge_weight,
                                   HopDagObjective::kMin);
}

std::vector<double> max_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight) {
  return weight_over_min_hop_paths(g, dest, edge_weight,
                                   HopDagObjective::kMax);
}

}  // namespace shg::graph
