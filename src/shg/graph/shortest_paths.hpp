// Shortest-path computations over topology graphs.
//
// Hop distances drive routing-table construction and the diameter column of
// Table I; weighted variants drive the "minimal physical path" analysis
// (principle #4 of the paper) where edge weights are physical link lengths.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "shg/graph/adjacency.hpp"

namespace shg::graph {

/// Marker for unreachable nodes in hop-distance vectors.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Reusable scratch space for BFS sweeps. Constructing a workspace once and
/// passing it to the `bfs_distances` / `distance_summary` overloads below
/// removes the per-call heap allocation that dominates all-pairs sweeps
/// (the DSE screening hot path runs thousands of them per candidate batch).
/// After a sweep, `dist` holds the hop distances of the last source.
struct BfsWorkspace {
  std::vector<int> dist;      ///< per-node hop distance (kUnreachable = not seen)
  std::vector<NodeId> queue;  ///< flat FIFO; reused ring storage
  /// Per-label frontiers for the delta-BFS repair (all empty between calls;
  /// the inner vectors keep their capacity, so repeated repairs on one
  /// workspace stop allocating after the first).
  std::vector<std::vector<NodeId>> levels;

  /// Grows the buffers to `num_nodes` (no-op when already large enough).
  void resize(int num_nodes) {
    const auto n = static_cast<std::size_t>(num_nodes);
    if (dist.size() < n) dist.resize(n);
    if (queue.size() < n) queue.resize(n);
    if (levels.size() < n) levels.resize(n);
  }
};

/// BFS hop distances from `src` to every node (kUnreachable if disconnected).
std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// Allocation-free BFS: fills `ws.dist[0..num_nodes)` in place, reusing the
/// workspace buffers. Equivalent to the allocating overload.
void bfs_distances(const Graph& g, NodeId src, BfsWorkspace& ws);

/// Delta-BFS repair after edge additions. `ws.dist[0..num_nodes)` must hold
/// BFS hop distances from some source over a subgraph of `g`, and
/// `new_edges` must list exactly the edges of `g` missing from that
/// subgraph. On return `ws.dist` equals `bfs_distances(g, src, ws)` run
/// from scratch — hop distances are unique, so the repaired row is
/// bit-identical to a fresh sweep.
///
/// Soundness: adding edges can only shrink distances, so the repair is a
/// bounded multi-source relaxation seeded at the new edges' endpoints; only
/// nodes whose distance actually decreases (plus their adjacency) are
/// touched, which is what makes incremental DSE screening cheaper than a
/// full sweep. A node may re-enter the queue when its label drops again,
/// but labels are integers bounded below, so the relaxation terminates.
void update_distances_add_edges(const Graph& g,
                                const std::vector<Edge>& new_edges,
                                BfsWorkspace& ws);

/// Aggregate statistics of one distance row, maintainable under repair.
struct DistRowStats {
  long long sum = 0;  ///< sum of finite distances (self-distance 0 included)
  int reachable = 0;  ///< nodes with finite distance (self included)
  int max = 0;        ///< largest finite distance
};

/// Statistics-fused repair: like the overload above, and additionally keeps
/// `hist` (hist[d] = number of nodes at distance d; at least num_nodes
/// entries) and `stats` consistent with the repaired row by touching them
/// only at label changes. Callers that fold a summary over many repaired
/// rows use this to skip the O(n) per-row re-scan — for screening sweeps
/// that re-scan is as expensive as the repair itself. `hist` and `stats`
/// must be consistent with `ws.dist` on entry (build them with a full scan
/// once, then carry them alongside the row).
void update_distances_add_edges(const Graph& g,
                                const std::vector<Edge>& new_edges,
                                BfsWorkspace& ws, int* hist,
                                DistRowStats& stats);

/// Fused single-pass all-pairs summary: average hops, diameter and
/// connectivity computed in ONE sweep of n BFS runs. Replaces the
/// `average_hops` + `diameter` pair (each of which runs its own all-pairs
/// sweep plus a connectivity probe — 2n + 2 BFS in total) on screening
/// paths. For disconnected graphs `connected` is false and the distance
/// statistics cover reachable pairs only.
struct DistanceSummary {
  bool connected = true;
  int diameter = 0;        ///< max finite hop distance over ordered pairs
  double avg_hops = 0.0;   ///< mean over reachable ordered pairs (u != v)
};

DistanceSummary distance_summary(const Graph& g);
DistanceSummary distance_summary(const Graph& g, BfsWorkspace& ws);

/// Extra adjacency overlaid on a base graph: per node, the neighbor
/// endpoints a set of new edges contributes. Lets distance computations run
/// against "base graph plus these edges" without materializing the child
/// graph — the DSE screening fast path prices hundreds of children of one
/// parent topology and the child graph construction would dominate it.
/// `assign` is reusable (buffers keep their capacity across children).
class EdgeOverlay {
 public:
  /// Rebuilds the overlay for `edges` over a `num_nodes`-node base graph.
  /// Endpoint ids are range-checked; edges are assumed absent from the base
  /// (same contract as update_distances_add_edges).
  void assign(int num_nodes, const std::vector<Edge>& edges);

  int num_nodes() const { return static_cast<int>(offsets_.size()) - 1; }

  /// Extra neighbors of `u` (endpoints only; overlay edges carry no ids).
  const NodeId* begin(NodeId u) const {
    return targets_.data() + offsets_[static_cast<std::size_t>(u)];
  }
  const NodeId* end(NodeId u) const {
    return targets_.data() + offsets_[static_cast<std::size_t>(u) + 1];
  }

 private:
  std::vector<int> offsets_;  ///< CSR offsets, num_nodes + 1 entries
  std::vector<NodeId> targets_;
};

/// Exact integer aggregates of the all-pairs hop-distance matrix. The
/// conventions match what screening folds over cached distance rows: pairs
/// are ordered, self pairs (distance 0) are included in `sum` and
/// `reachable_pairs`, and `diameter` is the largest finite distance.
/// Integer arithmetic is exact, so any two algorithms computing these agree
/// bit for bit — which is what lets the screening fast path swap the
/// per-row delta-BFS repair for the bit-parallel sweep below without
/// perturbing a single metric.
struct AllPairsTotals {
  long long sum = 0;
  long long reachable_pairs = 0;
  int diameter = 0;
};

/// Reusable buffers for all_pairs_totals (three bitset rows of one word per
/// node each; capacity persists across calls).
struct BitSweepWorkspace {
  std::vector<std::uint64_t> reached;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> next;
};

/// Bit-parallel all-pairs totals over `g` plus an optional `overlay` of
/// extra edges: sources are processed 64 at a time as single-word node
/// masks, one synchronous BFS round per distance value, so the whole
/// all-pairs sweep costs O(ceil(n/64) * diameter * E) word operations
/// instead of n separate BFS traversals. For screening-sized fabrics this
/// is an order of magnitude cheaper than even an incremental per-row
/// repair, and it needs no cached parent state at all.
AllPairsTotals all_pairs_totals(const Graph& g, const EdgeOverlay* overlay,
                                BitSweepWorkspace& ws);

/// All-pairs hop distances; result[u][v] is the hop distance from u to v.
std::vector<std::vector<int>> all_pairs_hops(const Graph& g);

/// True iff the graph is connected (vacuously true for <= 1 nodes).
bool is_connected(const Graph& g);

/// Maximum finite hop distance over all pairs. Throws if disconnected.
int diameter(const Graph& g);

/// Mean hop distance over all ordered pairs (u != v). Throws if disconnected.
double average_hops(const Graph& g);

/// Dijkstra distances from `src` with non-negative per-edge weights.
std::vector<double> dijkstra(const Graph& g, NodeId src,
                             const std::vector<double>& edge_weight);

/// For a fixed destination `dest`, computes for every node the minimum total
/// edge weight achievable over *hop-minimal* paths to `dest`.
///
/// This answers Table I's "minimal paths present among hop-minimal routes"
/// question: a routing algorithm that minimizes router-to-router hops can
/// only use hop-minimal paths, so the physically shortest path it may pick
/// is exactly this quantity.
std::vector<double> min_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight);

/// Like min_weight_over_min_hop_paths, but the *maximum* total edge weight
/// over hop-minimal paths — the physically worst path a hop-minimizing
/// routing algorithm might legally pick. Table I's "minimal paths used" is
/// satisfied only when even this worst case equals the physical minimum.
std::vector<double> max_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight);

}  // namespace shg::graph
