// Shortest-path computations over topology graphs.
//
// Hop distances drive routing-table construction and the diameter column of
// Table I; weighted variants drive the "minimal physical path" analysis
// (principle #4 of the paper) where edge weights are physical link lengths.
#pragma once

#include <limits>
#include <vector>

#include "shg/graph/adjacency.hpp"

namespace shg::graph {

/// Marker for unreachable nodes in hop-distance vectors.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// BFS hop distances from `src` to every node (kUnreachable if disconnected).
std::vector<int> bfs_distances(const Graph& g, NodeId src);

/// All-pairs hop distances; result[u][v] is the hop distance from u to v.
std::vector<std::vector<int>> all_pairs_hops(const Graph& g);

/// True iff the graph is connected (vacuously true for <= 1 nodes).
bool is_connected(const Graph& g);

/// Maximum finite hop distance over all pairs. Throws if disconnected.
int diameter(const Graph& g);

/// Mean hop distance over all ordered pairs (u != v). Throws if disconnected.
double average_hops(const Graph& g);

/// Dijkstra distances from `src` with non-negative per-edge weights.
std::vector<double> dijkstra(const Graph& g, NodeId src,
                             const std::vector<double>& edge_weight);

/// For a fixed destination `dest`, computes for every node the minimum total
/// edge weight achievable over *hop-minimal* paths to `dest`.
///
/// This answers Table I's "minimal paths present among hop-minimal routes"
/// question: a routing algorithm that minimizes router-to-router hops can
/// only use hop-minimal paths, so the physically shortest path it may pick
/// is exactly this quantity.
std::vector<double> min_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight);

/// Like min_weight_over_min_hop_paths, but the *maximum* total edge weight
/// over hop-minimal paths — the physically worst path a hop-minimizing
/// routing algorithm might legally pick. Table I's "minimal paths used" is
/// satisfied only when even this worst case equals the physical minimum.
std::vector<double> max_weight_over_min_hop_paths(
    const Graph& g, NodeId dest, const std::vector<double>& edge_weight);

}  // namespace shg::graph
