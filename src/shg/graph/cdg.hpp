// Channel dependency graph (CDG) cycle detection.
//
// Dally & Seitz: a routing function is deadlock-free on wormhole/VC networks
// iff its channel dependency graph is acyclic. Tests build the CDG of every
// deterministic routing function (one vertex per directed channel x VC class,
// one edge per possible in-channel -> out-channel dependency) and assert
// acyclicity with this checker.
#pragma once

#include <utility>
#include <vector>

namespace shg::graph {

/// True iff the directed graph with `num_nodes` vertices and `edges`
/// (from, to) pairs contains a cycle. Runs an iterative three-color DFS.
bool has_cycle(int num_nodes, const std::vector<std::pair<int, int>>& edges);

}  // namespace shg::graph
