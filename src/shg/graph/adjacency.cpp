#include "shg/graph/adjacency.hpp"

#include <algorithm>

namespace shg::graph {

Graph::Graph(int num_nodes) {
  SHG_REQUIRE(num_nodes >= 0, "graph must have a non-negative node count");
  adj_.resize(static_cast<std::size_t>(num_nodes));
}

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  SHG_REQUIRE(u >= 0 && u < num_nodes(), "edge endpoint u out of range");
  SHG_REQUIRE(v >= 0 && v < num_nodes(), "edge endpoint v out of range");
  SHG_REQUIRE(u != v, "self loops are not allowed");
  SHG_REQUIRE(!has_edge(u, v), "parallel edges are not allowed");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{u, v});
  adj_[static_cast<std::size_t>(u)].push_back(Neighbor{v, id});
  adj_[static_cast<std::size_t>(v)].push_back(Neighbor{u, id});
  return id;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  SHG_REQUIRE(u >= 0 && u < num_nodes(), "edge endpoint u out of range");
  SHG_REQUIRE(v >= 0 && v < num_nodes(), "edge endpoint v out of range");
  const auto& smaller = degree(u) <= degree(v)
                            ? adj_[static_cast<std::size_t>(u)]
                            : adj_[static_cast<std::size_t>(v)];
  const NodeId target = degree(u) <= degree(v) ? v : u;
  return std::any_of(smaller.begin(), smaller.end(),
                     [target](const Neighbor& n) { return n.node == target; });
}

int Graph::max_degree() const {
  int best = 0;
  for (int u = 0; u < num_nodes(); ++u) {
    best = std::max(best, degree(u));
  }
  return best;
}

}  // namespace shg::graph
