// Minimal JSON for the line-protocol server: a recursive-descent parser
// into a small value tree plus string-escaping helpers for the writers.
// Deliberately framework-free — the protocol is line-delimited JSON
// objects and the server composes responses with ordinary string streams.
//
// Robustness contract (the server's "malformed requests never kill the
// process" guarantee starts here): parse() throws shg::Error — never
// crashes, never reads out of bounds — on any malformed input: truncated
// documents, trailing garbage, bad escapes, invalid numbers, and nesting
// deeper than a fixed bound (so a hostile request cannot overflow the
// stack). Numbers are stored as doubles (plenty for every protocol field);
// as_int additionally rejects non-integral values.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace shg::serve {

/// One parsed JSON value. Object member order is preserved (vector of
/// pairs) so tests can pin rendered bytes.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses exactly one JSON document; trailing non-whitespace is an
  /// error. Throws shg::Error on malformed input.
  static JsonValue parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; each throws shg::Error when the kind mismatches.
  bool as_bool() const;
  double as_double() const;
  long long as_int() const;  ///< rejects non-integral numbers
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements

  /// Object member by name, or nullptr when absent (throws when this
  /// value is not an object).
  const JsonValue* find(const std::string& name) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Renders `text` as a quoted JSON string literal (quotes included),
/// escaping backslash, quote and control characters — the exact inverse of
/// the parser's unescaping for round-trip-safe payload embedding.
std::string json_quote(const std::string& text);

/// Formats a double deterministically for protocol responses: shortest
/// round-trip representation via %.17g tightened to the shortest precision
/// that parses back exactly. Deterministic across runs and platforms using
/// IEEE-754 doubles, so response bytes are reproducible.
std::string json_double(double value);

}  // namespace shg::serve
