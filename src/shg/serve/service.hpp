// Op layer of the resident customization service: parses one line-protocol
// request, executes it against the process-wide Session, and renders one
// response line. Transport-free — src/shg/serve/server.hpp owns sockets
// and the worker pool; tests and benches drive a Service directly.
//
// Protocol (one JSON object per line in, one per line out):
//
//   request  := {"op": OP, "id": scalar?, ...op fields}
//   OP       := "screen" | "customize" | "experiment" | "ping" | "shutdown"
//
//   screen     {"scenario": "a".."d"|"mempool"?, "row_skips": [int...]?,
//               "col_skips": [int...]?}
//   customize  {"scenario": ...?, "max_area_overhead": number?}
//   experiment {"grid": "RxC"?, "traffic": [string...]?,
//               "rates": [number...]?, "seeds": int?, "smoke": bool?,
//               "routing": "minimal"|"ugal"?}
//
//   response := {"id": scalar, "op": OP?, "ok": bool, "error": string?,
//                "elapsed_us": int, "counters": {...}?, "tiers": {...},
//                "result": {...}?}
//
// Determinism contract (pinned by tests/concurrent_session_test.cpp and
// the bench_serve gates): the "result" member is byte-identical whether
// the request is served solo on a cold single-thread session or
// interleaved with arbitrary other requests on a warm sharded one —
// results come from the session tiers, whose hits return the exact bits a
// cold computation produced. Everything else ("elapsed_us", "counters",
// "tiers") measures the serving process and legitimately varies with
// cache state and interleaving. "counters" carries the op's own exact
// engine accounting (screen: this request's candidate-tier hit/miss;
// experiment: this run's cell/hit/simulated counts); "tiers" snapshots the
// session-lifetime tier totals when the response is composed.
//
// Robustness: malformed requests — bad JSON, missing/unknown ops, wrong
// field types, out-of-range values — produce an {"ok": false, "error":
// ...} reply and never throw out of execute()/handle_line(), so one bad
// request can never take the serving process down.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "shg/customize/session.hpp"
#include "shg/eval/experiment.hpp"

namespace shg::serve {

/// Knobs of the default experiment campaign — shared by
/// examples/experiment_campaign.cpp and the "experiment" op so the server
/// response payload and the batch binary's report are byte-identical for
/// equal knobs (the CI smoke cmp's them).
struct CampaignParams {
  int rows = 8;
  int cols = 8;
  std::vector<std::string> traffic = {"uniform", "transpose",
                                      "hotspot:0,7:0.2"};
  std::vector<double> rates = {0.02, 0.05, 0.10, 0.15};
  int num_seeds = 3;
  bool smoke = false;  ///< shrinks simulated cycle counts for CI
  /// Routing policy ("minimal" | "ugal"). "ugal" also raises the campaign
  /// VC count to 4 (2 escape classes + 2 adaptive); the default stays at
  /// 2 VCs so default-knob campaign bytes are unchanged.
  std::string routing = "minimal";
};

/// The canonical campaign spec for the knobs: mesh + torus + SHG{4}/{2,5}
/// on the grid, one cell per (topology, traffic, rate, seed).
eval::ExperimentSpec make_campaign_spec(const CampaignParams& params);

/// Protocol operations.
enum class Op { kScreen, kCustomize, kExperiment, kPing, kShutdown };

/// The protocol name of an op ("screen", ...).
const char* op_name(Op op);

/// One parsed request. `valid` is false for malformed lines (with `error`
/// set); the id is preserved whenever the line parsed far enough to carry
/// one, so error replies still correlate.
struct Request {
  bool valid = false;
  std::string error;             ///< set when !valid
  std::string id_json = "null";  ///< rendered id value ("\"r1\"", "7", ...)
  std::string op_text;           ///< raw "op" string when present
  Op op = Op::kPing;
  // screen / customize:
  std::string scenario = "a";
  tech::ArchParams arch;            ///< resolved from `scenario`
  customize::Fingerprint arch_fp;   ///< screen-op coalescing key
  topo::ShgParams params;           ///< screen skip sets
  double max_area_overhead = 0.40;  ///< customize budget
  // experiment:
  CampaignParams campaign;
};

/// One composed response. to_line() renders the wire form (no trailing
/// newline); only `result_json` is covered by the byte-identity contract.
struct Response {
  std::string id_json = "null";
  std::string op_text;
  bool ok = false;
  std::string error;
  std::uint64_t elapsed_us = 0;
  bool has_counters = false;  ///< op-exact counters below are meaningful
  std::uint64_t op_hits = 0;
  std::uint64_t op_misses = 0;
  std::uint64_t op_simulated = 0;  ///< experiment op only
  std::string tiers_json;   ///< session-lifetime tier totals snapshot
  std::string result_json;  ///< deterministic payload; empty on error

  std::string to_line() const;
};

/// Session defaults for a service: the sharded concurrency mode, so the
/// tiers are safe for the server's worker pool.
customize::SessionOptions service_session_defaults();

struct ServiceOptions {
  customize::SessionOptions session = service_session_defaults();
};

/// The op layer. Thread-safe: parse_request is const and touches no
/// mutable state; execute/execute_screen_batch may run concurrently from
/// any number of worker threads (the session tiers are sharded + locked
/// under the default options).
class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Parses one request line; never throws (malformed lines come back with
  /// valid == false).
  Request parse_request(const std::string& line) const;

  /// Executes one request (valid or not) into a response; never throws.
  Response execute(const Request& request);

  /// Executes coalesced screen requests sharing one arch (equal
  /// `arch_fp`) through a single screen_batch_cached call; one response
  /// per request, each byte-identical in "result" to its solo execution.
  std::vector<Response> execute_screen_batch(
      const std::vector<Request>& batch);

  /// parse + execute + render: the whole line protocol for one request.
  std::string handle_line(const std::string& line);

  /// True once a "shutdown" op has executed; transports stop accepting.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  customize::Session& session() { return session_; }

 private:
  Response dispatch(const Request& request);

  customize::Session session_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace shg::serve
