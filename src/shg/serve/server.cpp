#include "shg/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "shg/common/parallel.hpp"

namespace shg::serve {

namespace {

bool write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone; requests still execute, replies drop
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool blank_line(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

/// Accepts connections one at a time until a shutdown op lands (the
/// resident session is the point of this server; one stream at a time
/// keeps the transport trivial while the worker pool still parallelizes
/// the requests WITHIN a stream).
int accept_connections(Server& server, int listener) {
  while (!server.service().shutdown_requested()) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::perror("shg_server: accept");
      return 1;
    }
    server.serve_stream(conn, conn);
    ::close(conn);
  }
  return 0;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() = default;

std::size_t Server::serve_stream(int in_fd, int out_fd) {
  WorkerPool pool(options_.workers);
  std::mutex queue_mutex;
  std::deque<Request> queue;
  std::mutex out_mutex;
  std::size_t served = 0;

  const auto write_line = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    write_all(out_fd, line + "\n");
  };

  // One pool task per submitted request; tasks pop FIFO, so a task may
  // serve a different request than the one whose arrival submitted it,
  // and a coalescing task may serve several (leaving later tasks an empty
  // queue — they just return).
  const auto work = [&] {
    std::vector<Request> batch;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      if (queue.empty()) return;
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
      if (options_.coalesce && batch.front().valid &&
          batch.front().op == Op::kScreen) {
        // Drain every queued screen on the same architecture: the group
        // screens through ONE screen_batch_cached call (misses share the
        // prefix forest), one response each.
        for (auto it = queue.begin(); it != queue.end();) {
          if (it->valid && it->op == Op::kScreen &&
              it->arch_fp == batch.front().arch_fp) {
            batch.push_back(std::move(*it));
            it = queue.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (batch.front().valid && batch.front().op == Op::kScreen) {
      for (const Response& r : service_.execute_screen_batch(batch)) {
        write_line(r.to_line());
      }
    } else {
      write_line(service_.execute(batch.front()).to_line());
    }
  };

  const auto enqueue = [&](const std::string& line) -> bool {
    Request request = service_.parse_request(line);
    const bool is_shutdown = request.valid && request.op == Op::kShutdown;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      queue.push_back(std::move(request));
    }
    ++served;
    pool.submit(work);
    return is_shutdown;
  };

  std::string buffer;
  char chunk[4096];
  bool stop = false;
  while (!stop) {
    const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (!stop) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (blank_line(line)) continue;
      // A shutdown op stops reading immediately (unread input is
      // deliberately dropped — the client asked to stop); its response is
      // still written by the drain below.
      stop = enqueue(line);
    }
    buffer.erase(0, start);
  }
  if (!stop && !blank_line(buffer)) {
    if (!buffer.empty() && buffer.back() == '\r') buffer.pop_back();
    enqueue(buffer);  // final unterminated line before EOF
  }
  pool.drain();
  return served;
}

int Server::serve_stdio() {
  serve_stream(STDIN_FILENO, STDOUT_FILENO);
  return 0;
}

int Server::serve_tcp(int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("shg_server: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listener, 8) < 0) {
    std::perror("shg_server: bind/listen");
    ::close(listener);
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  // The announce line is the readiness handshake scripts wait for (and,
  // with port 0, the only way to learn the chosen port).
  std::printf("listening on 127.0.0.1:%d\n",
              static_cast<int>(ntohs(addr.sin_port)));
  std::fflush(stdout);
  const int code = accept_connections(*this, listener);
  ::close(listener);
  return code;
}

int Server::serve_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "shg_server: unix socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("shg_server: socket");
    return 1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listener, 8) < 0) {
    std::perror("shg_server: bind/listen");
    ::close(listener);
    return 1;
  }
  std::printf("listening on %s\n", path.c_str());
  std::fflush(stdout);
  const int code = accept_connections(*this, listener);
  ::close(listener);
  ::unlink(path.c_str());
  return code;
}

}  // namespace shg::serve
