#include "shg/serve/service.hpp"

#include <chrono>
#include <cstdio>

#include "shg/common/error.hpp"
#include "shg/common/log.hpp"
#include "shg/customize/search.hpp"
#include "shg/serve/json.hpp"
#include "shg/tech/presets.hpp"
#include "shg/topo/generators.hpp"

namespace shg::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string u64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Renders an "id" value back to its wire form. Ids must be scalars so
/// the (string) wire form is a total order key for clients.
std::string render_id(const JsonValue& id) {
  switch (id.kind()) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return id.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return json_double(id.as_double());
    case JsonValue::Kind::kString:
      return json_quote(id.as_string());
    default:
      throw Error("\"id\" must be a scalar (string, number, bool or null)");
  }
}

/// The log context of a request: the unquoted id ("" for null ids), so a
/// server sink can tag warning lines "req-42: ...".
std::string log_context_of(const std::string& id_json) {
  if (id_json == "null") return std::string();
  if (!id_json.empty() && id_json.front() == '"') {
    return JsonValue::parse(id_json).as_string();
  }
  return id_json;
}

tech::ArchParams resolve_scenario(const std::string& name) {
  if (name == "a") return tech::knc_scenario(tech::KncScenario::kA);
  if (name == "b") return tech::knc_scenario(tech::KncScenario::kB);
  if (name == "c") return tech::knc_scenario(tech::KncScenario::kC);
  if (name == "d") return tech::knc_scenario(tech::KncScenario::kD);
  if (name == "mempool") return tech::mempool_arch();
  throw Error("unknown scenario \"" + name +
              "\" (expected \"a\", \"b\", \"c\", \"d\" or \"mempool\")");
}

/// Rejects member names outside `allowed` (nullptr-terminated), so typos
/// ("scneario") come back as errors instead of silently using defaults.
void require_members(const JsonValue& doc, const char* const* allowed) {
  for (const auto& [name, value] : doc.members()) {
    (void)value;
    bool known = false;
    for (const char* const* a = allowed; *a != nullptr; ++a) {
      if (name == *a) {
        known = true;
        break;
      }
    }
    SHG_REQUIRE(known, "unknown request field \"" + name + "\"");
  }
}

std::set<int> parse_skips(const JsonValue& value, bool row_skips,
                          const tech::ArchParams& arch) {
  // Mirrors make_sparse_hamming's bounds so one bad request fails at parse
  // time — before it can poison a coalesced screen batch.
  const int bound = row_skips ? arch.cols : arch.rows;
  const char* what = row_skips ? "row skip distances must lie in {2..C-1}"
                               : "column skip distances must lie in {2..R-1}";
  std::set<int> out;
  for (const JsonValue& item : value.items()) {
    const long long skip = item.as_int();
    SHG_REQUIRE(skip >= 2 && skip < bound, what);
    out.insert(static_cast<int>(skip));
  }
  return out;
}

void parse_campaign(const JsonValue& doc, CampaignParams& campaign) {
  // Service limits: a request sizes the work it asks for; these caps keep
  // one hostile request from monopolizing the process for hours.
  if (const JsonValue* grid = doc.find("grid")) {
    int rows = 0;
    int cols = 0;
    const bool parsed =
        std::sscanf(grid->as_string().c_str(), "%dx%d", &rows, &cols) == 2;
    // >= 6x5: the campaign's fixed SHG skip sets ({4}, {2,5}) need
    // 4 < cols and 5 < rows (make_sparse_hamming's Section III-b bounds).
    SHG_REQUIRE(parsed && rows >= 6 && cols >= 5 && rows <= 64 && cols <= 64,
                "\"grid\" must be \"RxC\" with 6 <= R <= 64, 5 <= C <= 64");
    campaign.rows = rows;
    campaign.cols = cols;
  }
  if (const JsonValue* traffic = doc.find("traffic")) {
    SHG_REQUIRE(!traffic->items().empty() && traffic->items().size() <= 16,
                "\"traffic\" must list 1..16 workload specs");
    campaign.traffic.clear();
    for (const JsonValue& item : traffic->items()) {
      campaign.traffic.push_back(item.as_string());
    }
  }
  if (const JsonValue* rates = doc.find("rates")) {
    SHG_REQUIRE(!rates->items().empty() && rates->items().size() <= 64,
                "\"rates\" must list 1..64 injection rates");
    campaign.rates.clear();
    for (const JsonValue& item : rates->items()) {
      const double rate = item.as_double();
      SHG_REQUIRE(rate > 0.0 && rate <= 1.0,
                  "injection rates must lie in (0, 1]");
      campaign.rates.push_back(rate);
    }
  }
  if (const JsonValue* seeds = doc.find("seeds")) {
    const long long count = seeds->as_int();
    SHG_REQUIRE(count >= 1 && count <= 64, "\"seeds\" must lie in 1..64");
    campaign.num_seeds = static_cast<int>(count);
  }
  if (const JsonValue* smoke = doc.find("smoke")) {
    campaign.smoke = smoke->as_bool();
  }
  if (const JsonValue* routing = doc.find("routing")) {
    // Validate at parse time so a typo fails the request, not the worker.
    campaign.routing =
        sim::routing_policy_name(sim::parse_routing_policy(
            routing->as_string()));
  }
}

std::string render_int_set(const std::set<int>& values) {
  std::string out = "[";
  bool first = true;
  for (int v : values) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(v);
  }
  out += ']';
  return out;
}

std::string render_metrics(const customize::CandidateMetrics& metrics) {
  return "{\"area_overhead\":" + json_double(metrics.area_overhead) +
         ",\"avg_hops\":" + json_double(metrics.avg_hops) +
         ",\"diameter\":" + json_double(metrics.diameter) +
         ",\"throughput_bound\":" + json_double(metrics.throughput_bound) +
         "}";
}

std::string render_screen_result(const Request& request,
                                 const customize::CandidateMetrics& metrics) {
  return "{\"scenario\":" + json_quote(request.scenario) +
         ",\"row_skips\":" + render_int_set(request.params.row_skips) +
         ",\"col_skips\":" + render_int_set(request.params.col_skips) +
         ",\"metrics\":" + render_metrics(metrics) + "}";
}

std::string render_tier(const customize::CacheStats& stats) {
  return "{\"hits\":" + u64(stats.hits) + ",\"misses\":" + u64(stats.misses) +
         ",\"insertions\":" + u64(stats.insertions) +
         ",\"evictions\":" + u64(stats.evictions) + "}";
}

std::string render_tiers(customize::Session& session) {
  return "{\"candidate\":" + render_tier(session.stats()) +
         ",\"sim\":" + render_tier(session.sim_stats()) +
         ",\"artifact\":{\"hits\":" + u64(session.artifact_hits()) +
         ",\"misses\":" + u64(session.artifact_misses()) + "}}";
}

/// Stamps the process metadata of a finished response: elapsed time and
/// the session-lifetime tier snapshot (the fields OUTSIDE the result
/// byte-identity contract).
void finish_response(Response& response, Clock::time_point start,
                     customize::Session& session) {
  response.elapsed_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
  response.tiers_json = render_tiers(session);
}

}  // namespace

eval::ExperimentSpec make_campaign_spec(const CampaignParams& params) {
  // The campaign of examples/experiment_campaign.cpp, spelled once: the
  // server's "experiment" op and the batch binary must produce
  // byte-identical reports for equal knobs (the CI smoke cmp's them).
  eval::ExperimentSpec spec;
  spec.name = "campaign-" + std::to_string(params.rows) + "x" +
              std::to_string(params.cols);
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_mesh(params.rows, params.cols), {}, ""});
  spec.topologies.push_back(
      eval::TopologyCase{topo::make_torus(params.rows, params.cols), {}, ""});
  spec.topologies.push_back(eval::TopologyCase{
      topo::make_sparse_hamming(params.rows, params.cols, {4}, {2, 5}),
      {},
      ""});
  for (const std::string& workload : params.traffic) {
    spec.traffic.push_back(eval::TrafficCase{workload, nullptr, ""});
  }
  spec.rates = params.rates;
  for (int s = 1; s <= params.num_seeds; ++s) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s));
  }
  // "minimal" keeps the historical 2-VC config so default-knob campaign
  // bytes (which the CI smoke cmp's against golden batch output) are
  // unchanged; "ugal" needs 2 escape classes + adaptive VCs on top.
  const sim::RoutingPolicy policy = sim::parse_routing_policy(params.routing);
  spec.config.sim.routing_policy = policy;
  if (policy == sim::RoutingPolicy::kUgal) {
    spec.name += "-ugal";
    spec.config.sim.num_vcs = 4;
  } else {
    spec.config.sim.num_vcs = 2;
  }
  spec.config.sim.buffer_depth_flits = 8;
  spec.config.sim.warmup_cycles = params.smoke ? 150 : 500;
  spec.config.sim.measure_cycles = params.smoke ? 400 : 2000;
  spec.config.sim.drain_cycles = params.smoke ? 6000 : 20000;
  return spec;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kScreen:
      return "screen";
    case Op::kCustomize:
      return "customize";
    case Op::kExperiment:
      return "experiment";
    case Op::kPing:
      return "ping";
    case Op::kShutdown:
      return "shutdown";
  }
  return "?";
}

customize::SessionOptions service_session_defaults() {
  customize::SessionOptions options;
  options.concurrency = customize::ConcurrencyMode::kSharded;
  return options;
}

Service::Service(ServiceOptions options)
    : session_(std::move(options.session)) {}

Request Service::parse_request(const std::string& line) const {
  Request request;
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
    SHG_REQUIRE(doc.is_object(), "request must be a JSON object");
  } catch (const std::exception& e) {
    request.error = e.what();
    return request;
  }
  try {
    // The id first: later failures keep it, so error replies correlate.
    if (const JsonValue* id = doc.find("id")) request.id_json = render_id(*id);

    const JsonValue* op = doc.find("op");
    SHG_REQUIRE(op != nullptr, "request is missing the \"op\" field");
    request.op_text = op->as_string();
    if (request.op_text == "screen") {
      request.op = Op::kScreen;
    } else if (request.op_text == "customize") {
      request.op = Op::kCustomize;
    } else if (request.op_text == "experiment") {
      request.op = Op::kExperiment;
    } else if (request.op_text == "ping") {
      request.op = Op::kPing;
    } else if (request.op_text == "shutdown") {
      request.op = Op::kShutdown;
    } else {
      throw Error("unknown op \"" + request.op_text + "\"");
    }

    switch (request.op) {
      case Op::kScreen: {
        static const char* const kAllowed[] = {
            "id", "op", "scenario", "row_skips", "col_skips", nullptr};
        require_members(doc, kAllowed);
        if (const JsonValue* s = doc.find("scenario")) {
          request.scenario = s->as_string();
        }
        request.arch = resolve_scenario(request.scenario);
        if (const JsonValue* v = doc.find("row_skips")) {
          request.params.row_skips = parse_skips(*v, true, request.arch);
        }
        if (const JsonValue* v = doc.find("col_skips")) {
          request.params.col_skips = parse_skips(*v, false, request.arch);
        }
        request.arch_fp = customize::fingerprint_arch(request.arch);
        break;
      }
      case Op::kCustomize: {
        static const char* const kAllowed[] = {
            "id", "op", "scenario", "max_area_overhead", nullptr};
        require_members(doc, kAllowed);
        if (const JsonValue* s = doc.find("scenario")) {
          request.scenario = s->as_string();
        }
        request.arch = resolve_scenario(request.scenario);
        if (const JsonValue* v = doc.find("max_area_overhead")) {
          request.max_area_overhead = v->as_double();
          SHG_REQUIRE(request.max_area_overhead > 0.0 &&
                          request.max_area_overhead <= 10.0,
                      "\"max_area_overhead\" must lie in (0, 10]");
        }
        break;
      }
      case Op::kExperiment: {
        static const char* const kAllowed[] = {
            "id",    "op",    "grid",    "traffic", "rates",
            "seeds", "smoke", "routing", nullptr};
        require_members(doc, kAllowed);
        parse_campaign(doc, request.campaign);
        break;
      }
      case Op::kPing:
      case Op::kShutdown: {
        static const char* const kAllowed[] = {"id", "op", nullptr};
        require_members(doc, kAllowed);
        break;
      }
    }
    request.valid = true;
  } catch (const std::exception& e) {
    request.valid = false;
    request.error = e.what();
  }
  return request;
}

Response Service::dispatch(const Request& request) {
  Response response;
  switch (request.op) {
    case Op::kScreen:
      // Reached only via execute_screen_batch.
      throw Error("internal: screen requests dispatch through the batch path");
    case Op::kCustomize: {
      customize::SearchOptions options;
      options.session = &session_;
      const customize::SearchResult result = customize::customize_greedy(
          request.arch, customize::Goal{request.max_area_overhead}, options);
      response.result_json =
          "{\"scenario\":" + json_quote(request.scenario) +
          ",\"row_skips\":" + render_int_set(result.params.row_skips) +
          ",\"col_skips\":" + render_int_set(result.params.col_skips) +
          ",\"metrics\":" + render_metrics(result.metrics) +
          ",\"steps\":" + std::to_string(result.history.size()) + "}";
      break;
    }
    case Op::kExperiment: {
      eval::ExperimentSpec spec = make_campaign_spec(request.campaign);
      spec.session = &session_;
      const eval::ExperimentReport report = eval::run_experiment(spec);
      // The report is embedded as ONE escaped string so the payload stays
      // byte-exact: clients unescape it and may cmp against the batch
      // binary's file (the CI smoke does).
      response.result_json =
          "{\"report\":" + json_quote(eval::experiment_to_json(report)) + "}";
      response.has_counters = true;
      response.op_hits = report.sim_cache_hits;
      response.op_misses = report.sim_cells - report.sim_cache_hits;
      response.op_simulated = report.sim_simulated;
      break;
    }
    case Op::kPing:
      response.result_json = "{\"pong\":true}";
      break;
    case Op::kShutdown:
      shutdown_.store(true, std::memory_order_relaxed);
      response.result_json = "{\"stopping\":true}";
      break;
  }
  return response;
}

Response Service::execute(const Request& request) {
  if (request.valid && request.op == Op::kScreen) {
    return execute_screen_batch({request}).front();
  }
  const Clock::time_point start = Clock::now();
  Response response;
  response.id_json = request.id_json;
  response.op_text = request.op_text;
  if (!request.valid) {
    response.error = request.error;
  } else {
    // Warnings emitted while serving this request (disk-tier discards
    // foremost) carry its id through the thread-local log context.
    const log::ScopedContext context(log_context_of(request.id_json));
    try {
      response = dispatch(request);
      response.id_json = request.id_json;
      response.op_text = request.op_text;
      response.ok = true;
    } catch (const std::exception& e) {
      response = Response{};
      response.id_json = request.id_json;
      response.op_text = request.op_text;
      response.error = e.what();
    }
  }
  finish_response(response, start, session_);
  return response;
}

std::vector<Response> Service::execute_screen_batch(
    const std::vector<Request>& batch) {
  const Clock::time_point start = Clock::now();
  std::vector<Response> responses(batch.size());
  if (batch.empty()) return responses;

  std::vector<topo::ShgParams> params;
  params.reserve(batch.size());
  for (const Request& request : batch) {
    SHG_REQUIRE(request.valid && request.op == Op::kScreen &&
                    request.arch_fp == batch.front().arch_fp,
                "screen batches must hold valid screen requests sharing one "
                "architecture");
    params.push_back(request.params);
  }

  customize::ScreenBatchStats stats;
  std::vector<customize::CandidateMetrics> metrics;
  std::string batch_error;
  try {
    metrics = customize::screen_batch_cached(batch.front().arch, params,
                                             session_, true, {}, &stats);
  } catch (const std::exception& e) {
    batch_error = e.what();
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Response& response = responses[i];
    response.id_json = batch[i].id_json;
    response.op_text = batch[i].op_text;
    if (!batch_error.empty()) {
      response.error = batch_error;
    } else {
      response.ok = true;
      response.has_counters = true;
      response.op_hits = stats.hit[i] ? 1 : 0;
      response.op_misses = stats.hit[i] ? 0 : 1;
      response.result_json = render_screen_result(batch[i], metrics[i]);
    }
    finish_response(response, start, session_);
  }
  return responses;
}

std::string Service::handle_line(const std::string& line) {
  return execute(parse_request(line)).to_line();
}

std::string Response::to_line() const {
  std::string out = "{\"id\":" + id_json;
  if (!op_text.empty()) out += ",\"op\":" + json_quote(op_text);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  if (!error.empty()) out += ",\"error\":" + json_quote(error);
  out += ",\"elapsed_us\":" + u64(elapsed_us);
  if (has_counters) {
    out += ",\"counters\":{\"hits\":" + u64(op_hits) +
           ",\"misses\":" + u64(op_misses) +
           ",\"simulated\":" + u64(op_simulated) + "}";
  }
  if (!tiers_json.empty()) out += ",\"tiers\":" + tiers_json;
  if (!result_json.empty()) out += ",\"result\":" + result_json;
  out += '}';
  return out;
}

}  // namespace shg::serve
