// Transport layer of the resident customization service: reads
// line-delimited JSON requests from a byte stream (stdin, a TCP
// connection, or a unix-domain socket), dispatches them across a
// persistent worker pool, and writes one response line per request.
// Framework-free: POSIX sockets and the WorkerPool of common/parallel.hpp.
//
// Dispatch: a reader thread-of-control parses each line into a Request and
// queues it; pool workers pop requests FIFO and execute them against the
// shared Service (whose session tiers are sharded + locked). Responses are
// written whole-line-at-a-time under one mutex as they complete, so lines
// never interleave — but they may be ORDERED differently from the
// requests; clients correlate by id.
//
// Coalescing: when a worker pops a screen request, it also drains every
// queued screen request sharing the same architecture fingerprint and
// serves the whole group through ONE screen_batch_cached call (misses
// screen together through the shared prefix forest). Each request still
// gets its own response, byte-identical in "result" to its solo run.
//
// Shutdown: a "shutdown" op stops the reader after in-flight requests
// drain (its own response included); EOF on the stream ends that stream
// the same way. Socket servers then stop accepting. Malformed lines are
// answered with ok:false replies and never terminate the process.
#pragma once

#include <cstddef>
#include <string>

#include "shg/serve/service.hpp"

namespace shg::serve {

struct ServerOptions {
  /// Worker pool size; 0 uses max_threads().
  int workers = 0;
  /// Batch queued same-architecture screen requests into one screening
  /// call (off serves every request individually; results are identical).
  bool coalesce = true;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Service& service() { return service_; }

  /// Serves one open stream (requests from in_fd, responses to out_fd)
  /// until EOF or a shutdown op; returns the number of requests served.
  /// Does not close the fds.
  std::size_t serve_stream(int in_fd, int out_fd);

  /// Serves stdin/stdout until EOF or shutdown. Returns a process exit
  /// code (0 on clean shutdown/EOF).
  int serve_stdio();

  /// Listens on 127.0.0.1:`port` (0 picks an ephemeral port), announces
  /// "listening on 127.0.0.1:PORT" on stdout, and serves connections
  /// sequentially until a shutdown op. Returns a process exit code.
  int serve_tcp(int port);

  /// Like serve_tcp over a unix-domain socket at `path` (replaced if it
  /// exists, removed on exit); announces "listening on PATH".
  int serve_unix(const std::string& path);

 private:
  ServerOptions options_;
  Service service_;
};

}  // namespace shg::serve
