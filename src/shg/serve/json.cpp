#include "shg/serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "shg/common/error.hpp"

namespace shg::serve {

namespace {

/// Hostile inputs must not exhaust the C++ stack; 64 levels is far beyond
/// any protocol request.
constexpr int kMaxDepth = 64;

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    SHG_REQUIRE(pos_ == text_.size(),
                "malformed JSON: trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("malformed JSON at byte " + std::to_string(pos_) + ": " +
                what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) fail("invalid literal");
    pos_ += len;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind_ = JsonValue::Kind::kString;
        value.string_ = parse_string();
        return value;
      case 't':
        expect_literal("true");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        return value;
      case 'f':
        expect_literal("false");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        return value;
      case 'n':
        expect_literal("null");
        value.kind_ = JsonValue::Kind::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    take();  // '{'
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      take();
      return value;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a member name");
      std::string name = parse_string();
      skip_ws();
      if (take() != ':') fail("expected ':' after a member name");
      value.members_.emplace_back(std::move(name), parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}' in an object");
    }
  }

  JsonValue parse_array(int depth) {
    take();  // '['
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      take();
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']' in an array");
    }
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in a string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (take() != '\\' || take() != 'u') fail("unpaired surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() < '0' || peek() > '9') fail("invalid value");
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("leading zeros are not allowed");
    }
    while (peek() >= '0' && peek() <= '9') ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (peek() < '0' || peek() > '9') fail("digits must follow '.'");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (peek() < '0' || peek() > '9') fail("digits must follow an exponent");
      while (peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      fail("invalid number");
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.number_ = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  SHG_REQUIRE(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  SHG_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

long long JsonValue::as_int() const {
  SHG_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  const double rounded = std::nearbyint(number_);
  SHG_REQUIRE(rounded == number_ && std::abs(number_) <= 9.007199254740992e15,
              "JSON number is not an exact integer");
  return static_cast<long long>(number_);
}

const std::string& JsonValue::as_string() const {
  SHG_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SHG_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const JsonValue* JsonValue::find(const std::string& name) const {
  SHG_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [member_name, member] : members_) {
    if (member_name == name) return &member;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  SHG_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double value) {
  // Shortest representation that round-trips: try increasing precision
  // until strtod gives back the exact bits (17 always does for IEEE-754).
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace shg::serve
